"""Shared memory of the simulated kernel.

The address space is split into a global segment (named cells, one word
each) and a heap segment.  The heap allocator never reuses addresses and
keeps freed objects poisoned in a quarantine, so use-after-free and
out-of-bounds accesses are always detectable — the same property KASAN's
redzones and quarantine give the instrumented kernels used in the paper's
evaluation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.kernel.failures import FailureKind, KernelFault

GLOBAL_BASE = 0x1_0000
HEAP_BASE = 0x10_0000
#: Gap between heap objects; accesses landing in it are out-of-bounds.
REDZONE = 16


class ObjectState(enum.Enum):
    ALLOCATED = "allocated"
    FREED = "freed"


@dataclass
class HeapObject:
    """Metadata for one heap allocation."""

    base: int
    size: int
    tag: str
    state: ObjectState = ObjectState.ALLOCATED
    leak_tracked: bool = False
    alloc_site: str = ""
    free_site: str = ""

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def in_redzone(self, addr: int) -> bool:
        return self.base + self.size <= addr < self.base + self.size + REDZONE


class Memory:
    """The sequentially consistent shared memory.

    Values are plain Python integers (pointers are addresses) except for
    list cells, which hold tuples and are manipulated through the ``LIST_*``
    instructions as single read-modify-write accesses.
    """

    def __init__(self, globals_init: Optional[Dict[str, Any]] = None) -> None:
        self._cells: Dict[int, Any] = {}
        self._globals: Dict[str, int] = {}
        self._objects: Dict[int, HeapObject] = {}
        self._next_global = GLOBAL_BASE
        self._next_heap = HEAP_BASE
        for name, value in (globals_init or {}).items():
            self.define_global(name, value)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def define_global(self, name: str, value: Any = 0) -> int:
        """Allocate a named global cell; idempotent re-definition updates the
        initial value."""
        if name in self._globals:
            addr = self._globals[name]
        else:
            addr = self._next_global
            self._next_global += 8
            self._globals[name] = addr
        self._cells[addr] = value
        return addr

    def global_addr(self, name: str) -> int:
        try:
            return self._globals[name]
        except KeyError:
            raise KeyError(f"undefined global {name!r}") from None

    @property
    def global_names(self) -> Dict[str, int]:
        return dict(self._globals)

    def symbolize(self, addr: int) -> str:
        """Best-effort symbolic name for a data address (for reports)."""
        for name, gaddr in self._globals.items():
            if gaddr == addr:
                return name
        obj = self.object_at(addr, include_freed=True)
        if obj is not None:
            offset = addr - obj.base
            return f"{obj.tag}+{offset}" if offset else obj.tag
        return f"0x{addr:x}"

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------
    def alloc(self, size: int, tag: str, site: str = "",
              leak_tracked: bool = False) -> int:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base = self._next_heap
        self._next_heap = base + size + REDZONE
        obj = HeapObject(base=base, size=size, tag=tag,
                         leak_tracked=leak_tracked, alloc_site=site)
        self._objects[base] = obj
        for offset in range(0, size, 8):
            self._cells[base + offset] = 0
        return base

    def free(self, addr: int, site: str = "") -> HeapObject:
        obj = self.object_at(addr, include_freed=True)
        if obj is None:
            raise KernelFault(FailureKind.GPF,
                              f"free of non-heap address 0x{addr:x}",
                              data_addr=addr)
        if obj.state is ObjectState.FREED:
            raise KernelFault(FailureKind.DOUBLE_FREE,
                              f"double free of {obj.tag}",
                              data_addr=addr, object_tag=obj.tag)
        obj.state = ObjectState.FREED
        obj.free_site = site
        return obj

    def object_at(self, addr: int, include_freed: bool = False) -> Optional[HeapObject]:
        """Find the heap object containing ``addr`` (or whose redzone does)."""
        for obj in self._objects.values():
            if obj.contains(addr) or obj.in_redzone(addr):
                if obj.state is ObjectState.FREED and not include_freed:
                    continue
                return obj
        return None

    def live_leaked_objects(self) -> list:
        """Leak-tracked objects that are still allocated but no longer
        referenced from anywhere in memory — the kmemleak criterion: an
        allocated block whose address appears in no live cell is
        unreachable and therefore leaked."""
        referenced = set()
        for value in self._cells.values():
            if isinstance(value, int):
                referenced.add(value)
            elif isinstance(value, tuple):
                referenced.update(v for v in value if isinstance(v, int))
        return [
            obj for obj in self._objects.values()
            if obj.leak_tracked and obj.state is ObjectState.ALLOCATED
            and obj.base not in referenced
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check(self, addr: int, writing: bool) -> None:
        if addr == 0:
            raise KernelFault(FailureKind.GPF, "NULL pointer dereference",
                              data_addr=addr)
        if addr in self._cells:
            obj = self.object_at(addr, include_freed=True)
            if obj is not None and obj.state is ObjectState.FREED:
                action = "write" if writing else "read"
                raise KernelFault(
                    FailureKind.KASAN_UAF,
                    f"use-after-free {action} in {obj.tag} "
                    f"(freed at {obj.free_site or '?'})",
                    data_addr=addr, object_tag=obj.tag)
            return
        obj = self.object_at(addr, include_freed=True)
        if obj is not None:
            if obj.in_redzone(addr) or not addr % 8 == 0:
                raise KernelFault(
                    FailureKind.KASAN_OOB,
                    f"slab-out-of-bounds access in {obj.tag} "
                    f"(offset {addr - obj.base}, size {obj.size})",
                    data_addr=addr, object_tag=obj.tag)
            if obj.state is ObjectState.FREED:
                raise KernelFault(FailureKind.KASAN_UAF,
                                  f"use-after-free access in {obj.tag}",
                                  data_addr=addr, object_tag=obj.tag)
            # Valid but uninitialised slot inside an object.
            self._cells[addr] = 0
            return
        raise KernelFault(FailureKind.GPF,
                          f"wild memory access at 0x{addr:x}", data_addr=addr)

    def load(self, addr: int) -> Any:
        self._check(addr, writing=False)
        return self._cells[addr]

    def store(self, addr: int, value: Any) -> None:
        self._check(addr, writing=True)
        self._cells[addr] = value

    # ------------------------------------------------------------------
    # Snapshot / restore (used by the hypervisor between runs)
    # ------------------------------------------------------------------
    @staticmethod
    def _copy_object(o: HeapObject) -> HeapObject:
        # A FREED object can never change again (the allocator never reuses
        # addresses and a second free raises), so snapshot and restore share
        # the instance instead of copying it; with a KASAN-style quarantine
        # most of a long run's objects are freed, which makes the per-
        # checkpoint capture cost proportional to the *live* heap.
        if o.state is ObjectState.FREED:
            return o
        return HeapObject(base=o.base, size=o.size, tag=o.tag,
                          state=o.state, leak_tracked=o.leak_tracked,
                          alloc_site=o.alloc_site, free_site=o.free_site)

    def snapshot(self) -> dict:
        return {
            "cells": dict(self._cells),
            "globals": dict(self._globals),
            "objects": {base: self._copy_object(o)
                        for base, o in self._objects.items()},
            "next_global": self._next_global,
            "next_heap": self._next_heap,
        }

    def restore(self, snap: dict) -> None:
        self._cells = dict(snap["cells"])
        self._globals = dict(snap["globals"])
        self._objects = {base: self._copy_object(o)
                         for base, o in snap["objects"].items()}
        self._next_global = snap["next_global"]
        self._next_heap = snap["next_heap"]
