"""Programs of the simulated kernel: functions, images, basic blocks.

A :class:`KernelImage` is the analogue of a built ``vmlinux``: it holds every
function, assigns each instruction a unique code address, resolves branch
targets, and precomputes basic blocks.  The basic-block table is what the
kcov analogue reports against, and the per-block list of memory-accessing
instructions is what AITIA's user agent extracts by disassembling the kernel
around each covered block (paper section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.kernel.instructions import Instruction, Op, decode_operands

#: Code addresses start here and advance by 4 per instruction, like a
#: fixed-width ISA.
CODE_BASE = 0x40_0000
CODE_STEP = 4


@dataclass
class Function:
    """A named function: a straight list of instructions with local labels."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def label_index(self, label: str) -> int:
        for i, instr in enumerate(self.instructions):
            if instr.label == label:
                return i
        raise KeyError(f"label {label!r} not found in function {self.name!r}")


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line region of one function."""

    func: str
    start_addr: int
    instr_addrs: tuple

    @property
    def entry(self) -> int:
        return self.start_addr


class KernelImage:
    """The assembled simulated kernel: functions, addresses, basic blocks."""

    def __init__(self, functions: Sequence[Function]) -> None:
        self.functions: Dict[str, Function] = {}
        self._by_addr: Dict[int, Instruction] = {}
        self._by_label: Dict[str, Instruction] = {}
        self._blocks: Dict[int, BasicBlock] = {}
        self._block_of_instr: Dict[int, int] = {}
        for func in functions:
            if func.name in self.functions:
                raise ValueError(f"duplicate function {func.name!r}")
            self.functions[func.name] = func
        self._assemble()
        self._compute_blocks()

    # ------------------------------------------------------------------
    def _assemble(self) -> None:
        addr = CODE_BASE
        for func in self.functions.values():
            if not func.instructions:
                raise ValueError(f"function {func.name!r} is empty")
            if func.instructions[-1].op is not Op.RET:
                raise ValueError(
                    f"function {func.name!r} must end with RET "
                    f"(got {func.instructions[-1].op})"
                )
            for index, instr in enumerate(func.instructions):
                instr.addr = addr
                instr.func = func.name
                instr.index = index
                addr += CODE_STEP
                self._by_addr[instr.addr] = instr
                if instr.label is not None:
                    if instr.label in self._by_label:
                        raise ValueError(
                            f"duplicate instruction label {instr.label!r}")
                    self._by_label[instr.label] = instr
        # Validate branch targets and CALL targets; cache the branch-target
        # index and the decoded operand tuple on each instruction so the
        # interpreter never re-resolves labels or re-unpacks operands at
        # execution time.
        for func in self.functions.values():
            for instr in func.instructions:
                if instr.target is not None:
                    instr.target_index = func.label_index(instr.target)
                instr.decoded = decode_operands(instr)
                if instr.op is Op.CALL:
                    callee = instr.operands[0]
                    if callee not in self.functions:
                        raise ValueError(
                            f"CALL to undefined function {callee!r} "
                            f"in {func.name!r}")
                if instr.op in (Op.QUEUE_WORK, Op.CALL_RCU):
                    callee = instr.operands[0]
                    if callee not in self.functions:
                        raise ValueError(
                            f"{instr.op.value} of undefined function "
                            f"{callee!r} in {func.name!r}")

    def _compute_blocks(self) -> None:
        for func in self.functions.values():
            leaders = {0}
            for i, instr in enumerate(func.instructions):
                if instr.target is not None:
                    leaders.add(func.label_index(instr.target))
                if instr.is_terminator and i + 1 < len(func.instructions):
                    leaders.add(i + 1)
            ordered = sorted(leaders)
            for j, start in enumerate(ordered):
                end = ordered[j + 1] if j + 1 < len(ordered) else len(func.instructions)
                addrs = tuple(func.instructions[k].addr for k in range(start, end))
                block = BasicBlock(func=func.name,
                                   start_addr=addrs[0],
                                   instr_addrs=addrs)
                self._blocks[block.start_addr] = block
                for a in addrs:
                    self._block_of_instr[a] = block.start_addr
                for k in range(start, end):
                    func.instructions[k].block_start = block.start_addr
                func.instructions[start].leads_block = True

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def instruction_at(self, addr: int) -> Instruction:
        try:
            return self._by_addr[addr]
        except KeyError:
            raise KeyError(f"no instruction at 0x{addr:x}") from None

    def instruction_labeled(self, label: str) -> Instruction:
        try:
            return self._by_label[label]
        except KeyError:
            raise KeyError(f"no instruction labeled {label!r}") from None

    def resolve(self, ref) -> Instruction:
        """Resolve an instruction reference given as an address, a label, or
        an :class:`Instruction` itself."""
        if isinstance(ref, Instruction):
            return ref
        if isinstance(ref, int):
            return self.instruction_at(ref)
        return self.instruction_labeled(ref)

    def block_containing(self, addr: int) -> BasicBlock:
        return self._blocks[self._block_of_instr[addr]]

    def block_at(self, start_addr: int) -> BasicBlock:
        return self._blocks[start_addr]

    @property
    def blocks(self) -> Dict[int, BasicBlock]:
        return dict(self._blocks)

    def memory_instructions_in_block(self, block_start: int) -> List[Instruction]:
        """The memory-accessing instructions of one basic block — what the
        user agent finds by disassembling around a covered block."""
        block = self._blocks[block_start]
        return [
            self._by_addr[a] for a in block.instr_addrs
            if self._by_addr[a].accesses_memory
        ]

    def memory_instructions(self, func: Optional[str] = None) -> List[Instruction]:
        """All memory-accessing instructions (optionally of one function)."""
        instrs = []
        functions = [self.functions[func]] if func else self.functions.values()
        for f in functions:
            instrs.extend(i for i in f.instructions if i.accesses_memory)
        return instrs

    def __len__(self) -> int:
        return len(self._by_addr)

    def disassemble(self, func: Optional[str] = None) -> str:
        """Human-readable listing, for debugging and examples."""
        lines = []
        functions = [self.functions[func]] if func else self.functions.values()
        for f in functions:
            lines.append(f"{f.name}:")
            for instr in f.instructions:
                label = f"{instr.label}:" if instr.label else ""
                lines.append(f"  0x{instr.addr:06x} {label:>10s} {instr!r}")
        return "\n".join(lines)
