"""Memory-access records emitted by the simulated kernel.

Every executed ``LOAD``/``STORE``/``INC``/``LIST_*`` instruction produces one
:class:`MemoryAccess`.  These records are the raw material for everything
above the machine: the hypervisor's watchpoints trap on them, LIFS derives
conflicting instructions from them, and Causality Analysis replays races
expressed in terms of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet


class AccessKind(enum.Enum):
    READ = "R"
    WRITE = "W"
    READ_WRITE = "RW"

    @property
    def is_read(self) -> bool:
        return self in (AccessKind.READ, AccessKind.READ_WRITE)

    @property
    def is_write(self) -> bool:
        return self in (AccessKind.WRITE, AccessKind.READ_WRITE)


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic memory access.

    ``seq`` is the global execution index (the position in the totally
    ordered instruction sequence of the run), ``occurrence`` counts how many
    times this thread has executed this particular instruction so far
    (needed to address an access inside a loop), and ``lockset`` is the set
    of locks the thread held while performing the access — used to exclude
    lock-ordered pairs from the data-race definition, per the Linux kernel
    memory model the paper adopts (section 2).
    """

    seq: int
    thread: str
    instr_addr: int
    instr_label: str
    func: str
    data_addr: int
    kind: AccessKind
    occurrence: int
    lockset: FrozenSet[str] = frozenset()

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    def conflicts_with(self, other: "MemoryAccess") -> bool:
        """Conflicting accesses: same location, different threads, at least
        one write (the Linux-kernel memory-model definition used throughout
        the paper)."""
        return (
            self.data_addr == other.data_addr
            and self.thread != other.thread
            and (self.is_write or other.is_write)
        )

    def races_with(self, other: "MemoryAccess") -> bool:
        """A conflicting pair not ordered by a common lock."""
        return self.conflicts_with(other) and not (self.lockset & other.lockset)

    def __str__(self) -> str:
        return (
            f"{self.instr_label}({self.thread},{self.kind.value},"
            f"0x{self.data_addr:x})"
        )
