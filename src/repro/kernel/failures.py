"""Failure taxonomy of the simulated kernel.

The kinds mirror the crash classes appearing in the paper's evaluation
(Tables 2 and 3): KASAN use-after-free and slab-out-of-bounds reports,
general protection faults (NULL/wild dereference), assertion violations
(``BUG_ON``), memory leaks, and deadlocks (watchdog/hung-task reports).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class FailureKind(enum.Enum):
    """Classes of kernel failures detectable by the simulated kernel."""

    KASAN_UAF = "KASAN: use-after-free"
    KASAN_OOB = "KASAN: slab-out-of-bounds"
    GPF = "general protection fault"
    ASSERTION = "kernel BUG (assertion violation)"
    MEMORY_LEAK = "memory leak"
    DEADLOCK = "INFO: task hung (deadlock)"
    DOUBLE_FREE = "KASAN: double-free"


@dataclass(frozen=True)
class Failure:
    """A manifested kernel failure.

    ``instr_label`` is the display name of the faulting instruction and
    ``thread`` the name of the context that executed it.  Together with
    ``kind`` they make up the *failure information* AITIA consumes from a
    crash report (paper section 4.2); two failures are considered the same
    symptom when their ``signature`` values match.
    """

    kind: FailureKind
    thread: str = ""
    instr_label: str = ""
    message: str = ""
    data_addr: Optional[int] = None
    object_tag: Optional[str] = None

    @property
    def signature(self) -> str:
        """A stable identifier for "is this the same crash?" comparisons."""
        return f"{self.kind.name}@{self.instr_label}"

    def __str__(self) -> str:
        where = f" in {self.thread} at {self.instr_label}" if self.instr_label else ""
        msg = f": {self.message}" if self.message else ""
        return f"{self.kind.value}{where}{msg}"


class KernelFault(Exception):
    """Raised internally by the memory subsystem or the interpreter when an
    instruction faults; the machine converts it into a :class:`Failure` and
    halts, the way KASAN panics the kernel."""

    def __init__(self, kind: FailureKind, message: str = "",
                 data_addr: Optional[int] = None,
                 object_tag: Optional[str] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message
        self.data_addr = data_addr
        self.object_tag = object_tag


@dataclass
class CrashReport:
    """What a bug-finding system hands to AITIA: the symptom plus the
    location of the failure, extracted from a coredump."""

    failure: Failure
    kernel_log: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def symptom(self) -> FailureKind:
        return self.failure.kind

    @property
    def location(self) -> str:
        return self.failure.instr_label
