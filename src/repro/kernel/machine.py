"""The simulated-kernel virtual machine.

:class:`KernelMachine` interprets the IR one instruction at a time, *only*
when an external scheduler calls :meth:`KernelMachine.step` for a specific
thread.  Nothing ever runs spontaneously: this gives the layer above the
same instruction-granular control that AITIA's hypervisor obtains with
hardware breakpoints, while the machine itself stays a faithful, dumb CPU.

The machine records every memory access (with locksets and occurrence
indices), every background-thread invocation, and the totally ordered trace
of executed instructions.  On a fault it converts the exception into a
:class:`~repro.kernel.failures.Failure` and halts, like a kernel panic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.kernel.access import AccessKind, MemoryAccess
from repro.kernel.failures import Failure, FailureKind, KernelFault
from repro.kernel.instructions import (
    BINARY_OPERATORS,
    Deref,
    Global,
    Imm,
    Instruction,
    Op,
    Reg,
)
from repro.kernel.locks import LockTable
from repro.kernel.memory import Memory
from repro.kernel.program import KernelImage
from repro.kernel.threads import Frame, ThreadContext, ThreadKind, ThreadState

#: Hard per-thread step limit; hitting it means the model itself is broken
#: (an unbounded loop), not a kernel failure.
MAX_THREAD_STEPS = 200_000


@dataclass(frozen=True)
class ThreadSpec:
    """Initial thread of a run (a system call in flight)."""

    name: str
    entry: str
    kind: ThreadKind = ThreadKind.SYSCALL
    regs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SpawnEvent:
    """A background-thread invocation (``queue_work`` / ``call_rcu``)."""

    seq: int
    parent: str
    child: str
    kind: ThreadKind
    instr_label: str


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction in the totally ordered run trace."""

    seq: int
    thread: str
    instr_addr: int
    instr_label: str
    func: str
    occurrence: int


@dataclass
class StepOutcome:
    """What happened when one instruction was (or was not) executed."""

    executed: bool
    instr: Optional[Instruction] = None
    accesses: List[MemoryAccess] = field(default_factory=list)
    spawned: List[int] = field(default_factory=list)
    blocked: bool = False
    thread_done: bool = False
    failure: Optional[Failure] = None


class KernelMachine:
    """One bootable instance of the simulated kernel."""

    def __init__(
        self,
        image: KernelImage,
        threads: Sequence[ThreadSpec],
        globals_init: Optional[Dict[str, Any]] = None,
        coverage_cb: Optional[Callable[[str, int], None]] = None,
        leak_check: bool = True,
        setup: Sequence[ThreadSpec] = (),
    ) -> None:
        self.image = image
        self.memory = Memory()
        self.locks = LockTable()
        self.coverage_cb = coverage_cb
        self.leak_check = leak_check
        self.failure: Optional[Failure] = None
        self.access_log: List[MemoryAccess] = []
        self.trace: List[TraceEntry] = []
        self.spawn_events: List[SpawnEvent] = []
        self._seq = 0
        self.threads: List[ThreadContext] = []
        self._by_name: Dict[str, ThreadContext] = {}

        # Pre-define every global the image mentions (deterministic layout),
        # then apply the model's initial values.
        for name in self._referenced_globals():
            self.memory.define_global(name, 0)
        for name, value in (globals_init or {}).items():
            self.memory.define_global(name, value)

        # Setup calls (open/socket/...) run serially to completion before the
        # concurrent part of a slice, and their activity is not recorded:
        # they establish the pre-failure kernel state, like replaying the
        # non-concurrent prefix of an execution history (section 4.2).
        for spec in setup:
            ctx = self._add_thread(spec.name, spec.entry, spec.kind,
                                   regs=dict(spec.regs))
            while not ctx.done:
                if self.halted:
                    raise RuntimeError(
                        f"setup call {spec.name} crashed the kernel: "
                        f"{self.failure}")
                self.step(ctx.tid)
        #: Instructions interpreted to boot this machine (the serial setup
        #: prefix); a run resumed from a checkpoint skips exactly this work
        #: plus the checkpointed prefix.
        self.setup_steps = sum(t.steps for t in self.threads)
        self.access_log.clear()
        self.trace.clear()
        self.spawn_events.clear()

        for spec in threads:
            self._add_thread(spec.name, spec.entry, spec.kind,
                             regs=dict(spec.regs))

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _referenced_globals(self) -> List[str]:
        names: List[str] = []
        seen = set()
        for func in self.image.functions.values():
            for instr in func.instructions:
                for operand in instr.operands:
                    if isinstance(operand, Global) and operand.name not in seen:
                        seen.add(operand.name)
                        names.append(operand.name)
        return names

    def _add_thread(self, name: str, entry: str, kind: ThreadKind,
                    regs: Optional[Dict[str, Any]] = None,
                    spawned_by: Optional[str] = None,
                    spawn_instr: Optional[str] = None) -> ThreadContext:
        if name in self._by_name:
            raise ValueError(f"duplicate thread name {name!r}")
        if entry not in self.image.functions:
            raise ValueError(f"thread entry {entry!r} is not a function")
        ctx = ThreadContext(
            tid=len(self.threads), name=name, kind=kind, entry=entry,
            regs=regs or {}, frames=[Frame(entry, 0)],
            spawned_by=spawned_by, spawn_instr=spawn_instr,
        )
        self.threads.append(ctx)
        self._by_name[name] = ctx
        return ctx

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture the machine's full mutable state (see
        :mod:`repro.kernel.snapshot`)."""
        from repro.kernel.snapshot import snapshot_machine
        return snapshot_machine(self)

    def restore(self, snapshot) -> None:
        """Put the machine into a previously captured state, rebuilding the
        thread list as needed."""
        from repro.kernel.snapshot import restore_machine
        restore_machine(self, snapshot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def thread(self, ref) -> ThreadContext:
        """Look a thread up by tid or name."""
        if isinstance(ref, ThreadContext):
            return ref
        if isinstance(ref, int):
            return self.threads[ref]
        return self._by_name[ref]

    @property
    def halted(self) -> bool:
        return self.failure is not None

    def all_done(self) -> bool:
        return all(t.done for t in self.threads)

    def runnable_threads(self) -> List[ThreadContext]:
        if self.halted:
            return []
        return [t for t in self.threads if t.runnable]

    def peek(self, ref) -> Optional[Instruction]:
        """The next instruction ``ref`` would execute, or ``None`` if the
        thread is done.  Blocked threads still report their pending LOCK."""
        ctx = self.thread(ref)
        if ctx.done or self.halted:
            return None
        frame = ctx.current_frame()
        func = self.image.functions[frame.func]
        return func.instructions[frame.pc]

    def resolve_access_addr(self, ref, instr: Instruction) -> Optional[int]:
        """The data address ``instr`` would access if the thread executed it
        now, or ``None`` for non-memory instructions.  This mirrors the AITIA
        hypervisor disassembling a breakpointed instruction to find the
        address to watch (paper section 4.3)."""
        if not instr.accesses_memory:
            return None
        ctx = self.thread(ref)
        if instr.op is Op.FREE:
            return self._value(ctx, instr.operands[0])
        expr = instr.operands[1] \
            if instr.op in (Op.LOAD, Op.LIST_CONTAINS, Op.CMPXCHG,
                            Op.XCHG) \
            else instr.operands[0]
        try:
            return self._effective_addr(ctx, expr)
        except KeyError:
            return None

    def next_occurrence(self, ref, instr_addr: int) -> int:
        """The occurrence index the next execution of ``instr_addr`` by this
        thread would have (1-based)."""
        ctx = self.thread(ref)
        return ctx.exec_counts.get(instr_addr, 0) + 1

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def _value(self, ctx: ThreadContext, src) -> Any:
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, Reg):
            return ctx.regs.get(src.name, 0)
        raise TypeError(f"bad value source {src!r}")

    def _effective_addr(self, ctx: ThreadContext, expr) -> int:
        if isinstance(expr, Global):
            return self.memory.global_addr(expr.name)
        if isinstance(expr, Deref):
            base = ctx.regs.get(expr.reg, 0)
            return base + expr.offset
        raise TypeError(f"bad address expression {expr!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, ref) -> StepOutcome:
        """Execute one instruction of the given thread.

        Blocked threads re-attempt their pending LOCK.  Stepping a done
        thread or a halted machine is an error — the scheduler above must
        not do it.
        """
        if self.halted:
            raise RuntimeError("machine has halted on a failure")
        ctx = self.thread(ref)
        if ctx.done:
            raise RuntimeError(f"thread {ctx.name} is done")
        ctx.steps += 1
        if ctx.steps > MAX_THREAD_STEPS:
            raise RuntimeError(
                f"thread {ctx.name} exceeded {MAX_THREAD_STEPS} steps; "
                f"the model likely has an unbounded loop")

        frame = ctx.current_frame()
        func = self.image.functions[frame.func]
        instr = func.instructions[frame.pc]

        if self.coverage_cb is not None:
            block = self.image.block_containing(instr.addr)
            if block.start_addr == instr.addr:
                self.coverage_cb(ctx.name, block.start_addr)

        try:
            return self._execute(ctx, frame, instr)
        except KernelFault as fault:
            # _execute records the trace entry before the access faults, so
            # the faulting instruction is already the last trace entry.
            self.failure = Failure(
                kind=fault.kind, thread=ctx.name, instr_label=instr.name,
                message=fault.message, data_addr=fault.data_addr,
                object_tag=fault.object_tag,
            )
            return StepOutcome(executed=True, instr=instr,
                               failure=self.failure)

    def _record_trace(self, ctx: ThreadContext, instr: Instruction) -> int:
        self._seq += 1
        count = ctx.exec_counts.get(instr.addr, 0) + 1
        ctx.exec_counts[instr.addr] = count
        self.trace.append(TraceEntry(
            seq=self._seq, thread=ctx.name, instr_addr=instr.addr,
            instr_label=instr.name, func=instr.func, occurrence=count,
        ))
        return count

    def _record_access(self, ctx: ThreadContext, instr: Instruction,
                       data_addr: int, kind: AccessKind,
                       occurrence: int) -> MemoryAccess:
        access = MemoryAccess(
            seq=self._seq, thread=ctx.name, instr_addr=instr.addr,
            instr_label=instr.name, func=instr.func, data_addr=data_addr,
            kind=kind, occurrence=occurrence,
            lockset=frozenset(ctx.locks_held),
        )
        self.access_log.append(access)
        return access

    def _advance(self, frame: Frame) -> None:
        frame.pc += 1

    def _execute(self, ctx: ThreadContext, frame: Frame,
                 instr: Instruction) -> StepOutcome:
        op = instr.op
        out = StepOutcome(executed=True, instr=instr)

        # LOCK is special: a failed acquisition blocks without executing.
        if op is Op.LOCK:
            name = instr.operands[0]
            if self.locks.try_acquire(name, ctx.tid):
                ctx.locks_held.append(name)
                ctx.state = ThreadState.READY
                ctx.blocked_on = None
                self._record_trace(ctx, instr)
                self._advance(frame)
            else:
                ctx.state = ThreadState.BLOCKED
                ctx.blocked_on = name
                out.executed = False
                out.blocked = True
            return out

        occurrence = self._record_trace(ctx, instr)

        if op is Op.LOAD:
            dst, expr = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ,
                                    occurrence))
            ctx.regs[dst.name] = self.memory.load(addr)
            self._advance(frame)
        elif op is Op.STORE:
            expr, src = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.WRITE,
                                    occurrence))
            self.memory.store(addr, self._value(ctx, src))
            self._advance(frame)
        elif op is Op.INC:
            expr, delta = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                                    occurrence))
            self.memory.store(addr, self.memory.load(addr) + delta.value)
            self._advance(frame)
        elif op is Op.MOV:
            dst, src = instr.operands
            ctx.regs[dst.name] = self._value(ctx, src)
            self._advance(frame)
        elif op is Op.LEA:
            dst, glob = instr.operands
            ctx.regs[dst.name] = self.memory.global_addr(glob.name)
            self._advance(frame)
        elif op is Op.BINOP:
            dst, operator, lhs, rhs = instr.operands
            fn = BINARY_OPERATORS[operator]
            ctx.regs[dst.name] = fn(self._value(ctx, lhs),
                                    self._value(ctx, rhs))
            self._advance(frame)
        elif op in (Op.BRZ, Op.BRNZ):
            cond = self._value(ctx, instr.operands[0])
            taken = (cond == 0) if op is Op.BRZ else (cond != 0)
            if taken:
                func = self.image.functions[frame.func]
                frame.pc = func.label_index(instr.target)
            else:
                self._advance(frame)
        elif op is Op.JMP:
            func = self.image.functions[frame.func]
            frame.pc = func.label_index(instr.target)
        elif op is Op.CALL:
            callee = instr.operands[0]
            self._advance(frame)
            ctx.frames.append(Frame(callee, 0))
        elif op is Op.RET:
            ctx.frames.pop()
            if not ctx.frames:
                ctx.state = ThreadState.DONE
                out.thread_done = True
        elif op is Op.ALLOC:
            dst, size, tag, leak_tracked = instr.operands
            addr = self.memory.alloc(size, tag, site=instr.name,
                                     leak_tracked=leak_tracked)
            ctx.regs[dst.name] = addr
            self._advance(frame)
        elif op is Op.FREE:
            ptr = self._value(ctx, instr.operands[0])
            # Freeing writes the *whole* object (as KASAN poisons it), so
            # the free conflicts with accesses to any field of the object,
            # not just its base.
            obj = self.memory.object_at(ptr, include_freed=True)
            if obj is not None and obj.base == ptr:
                for offset in range(0, obj.size, 8):
                    out.accesses.append(
                        self._record_access(ctx, instr, ptr + offset,
                                            AccessKind.WRITE, occurrence))
            else:
                out.accesses.append(
                    self._record_access(ctx, instr, ptr, AccessKind.WRITE,
                                        occurrence))
            self.memory.free(ptr, site=instr.name)
            self._advance(frame)
        elif op is Op.UNLOCK:
            name = instr.operands[0]
            woken = self.locks.release(name, ctx.tid)
            ctx.locks_held.remove(name)
            for tid in woken:
                waiter = self.threads[tid]
                waiter.state = ThreadState.READY
                waiter.blocked_on = None
            self._advance(frame)
        elif op in (Op.QUEUE_WORK, Op.CALL_RCU):
            func_name, arg = instr.operands
            kind = ThreadKind.KWORKER if op is Op.QUEUE_WORK else ThreadKind.RCU
            prefix = "kworker" if kind is ThreadKind.KWORKER else "rcu"
            child_name = f"{prefix}/{func_name}#{len(self.threads)}"
            child = self._add_thread(
                child_name, func_name, kind,
                regs={"a0": self._value(ctx, arg)},
                spawned_by=ctx.name, spawn_instr=instr.name)
            self.spawn_events.append(SpawnEvent(
                seq=self._seq, parent=ctx.name, child=child_name,
                kind=kind, instr_label=instr.name))
            out.spawned.append(child.tid)
            self._advance(frame)
        elif op is Op.BUG_ON:
            cond, message = instr.operands
            if self._value(ctx, cond):
                raise KernelFault(FailureKind.ASSERTION,
                                  message or f"BUG_ON at {instr.name}")
            self._advance(frame)
        elif op is Op.LIST_ADD:
            expr, elem = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                                    occurrence))
            current = self.memory.load(addr)
            items = current if isinstance(current, tuple) else ()
            self.memory.store(addr, items + (self._value(ctx, elem),))
            self._advance(frame)
        elif op is Op.LIST_DEL:
            expr, elem = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                                    occurrence))
            current = self.memory.load(addr)
            items = list(current) if isinstance(current, tuple) else []
            value = self._value(ctx, elem)
            if value in items:
                items.remove(value)
            self.memory.store(addr, tuple(items))
            self._advance(frame)
        elif op is Op.LIST_CONTAINS:
            dst, expr, elem = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ,
                                    occurrence))
            current = self.memory.load(addr)
            items = current if isinstance(current, tuple) else ()
            ctx.regs[dst.name] = int(self._value(ctx, elem) in items)
            self._advance(frame)
        elif op is Op.CMPXCHG:
            dst, expr, expected, new_value = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                                    occurrence))
            old_value = self.memory.load(addr)
            if old_value == self._value(ctx, expected):
                self.memory.store(addr, self._value(ctx, new_value))
            ctx.regs[dst.name] = old_value
            self._advance(frame)
        elif op is Op.XCHG:
            dst, expr, new_value = instr.operands
            addr = self._effective_addr(ctx, expr)
            out.accesses.append(
                self._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                                    occurrence))
            ctx.regs[dst.name] = self.memory.load(addr)
            self.memory.store(addr, self._value(ctx, new_value))
            self._advance(frame)
        elif op is Op.NOP:
            self._advance(frame)
        else:  # pragma: no cover — every opcode is handled above
            raise NotImplementedError(f"unhandled opcode {op}")

        return out

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def finish(self) -> Optional[Failure]:
        """Run end-of-execution detectors (memory leaks).  Returns the run's
        failure, if any — either one that already halted the machine or one
        found now."""
        if self.failure is not None:
            return self.failure
        if self.leak_check and self.all_done():
            leaked = self.memory.live_leaked_objects()
            if leaked:
                obj = leaked[0]
                self.failure = Failure(
                    kind=FailureKind.MEMORY_LEAK,
                    instr_label=obj.alloc_site,
                    message=f"object {obj.tag} allocated at "
                            f"{obj.alloc_site} was never freed",
                    object_tag=obj.tag)
        return self.failure

    def report_deadlock(self, blocked: Sequence[ThreadContext]) -> Failure:
        """Record a deadlock failure (called by the scheduler when it proves
        no thread can make progress)."""
        names = ", ".join(t.name for t in blocked)
        waits = ", ".join(f"{t.name}->{t.blocked_on}" for t in blocked)
        instr_label = ""
        if blocked:
            pending = self.peek(blocked[0])
            if pending is not None:
                instr_label = pending.name
        self.failure = Failure(
            kind=FailureKind.DEADLOCK,
            thread=blocked[0].name if blocked else "",
            instr_label=instr_label,
            message=f"threads hung: {names} ({waits})")
        return self.failure
