"""The simulated-kernel virtual machine.

:class:`KernelMachine` interprets the IR one instruction at a time, *only*
when an external scheduler calls :meth:`KernelMachine.step` for a specific
thread.  Nothing ever runs spontaneously: this gives the layer above the
same instruction-granular control that AITIA's hypervisor obtains with
hardware breakpoints, while the machine itself stays a faithful, dumb CPU.

The machine records every memory access (with locksets and occurrence
indices), every background-thread invocation, and the totally ordered trace
of executed instructions.  On a fault it converts the exception into a
:class:`~repro.kernel.failures.Failure` and halts, like a kernel panic.

Execution dispatches through a per-opcode handler table over the
assembly-time decoded operand tuples (see
:func:`repro.kernel.instructions.decode_operands`): one dict probe per
step instead of an if/elif ladder, no ``isinstance`` operand tests, and
branch targets resolved to instruction indices ahead of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.kernel.access import AccessKind, MemoryAccess
from repro.kernel.failures import Failure, FailureKind, KernelFault
from repro.kernel.instructions import (
    IMM,
    Deref,
    Global,
    Imm,
    Instruction,
    Op,
    Reg,
)
from repro.kernel.locks import LockTable
from repro.kernel.memory import Memory
from repro.kernel.program import KernelImage
from repro.kernel.threads import Frame, ThreadContext, ThreadKind, ThreadState

#: Hard per-thread step limit; hitting it means the model itself is broken
#: (an unbounded loop), not a kernel failure.
MAX_THREAD_STEPS = 200_000


@dataclass(frozen=True)
class ThreadSpec:
    """Initial thread of a run (a system call in flight)."""

    name: str
    entry: str
    kind: ThreadKind = ThreadKind.SYSCALL
    regs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SpawnEvent:
    """A background-thread invocation (``queue_work`` / ``call_rcu``)."""

    seq: int
    parent: str
    child: str
    kind: ThreadKind
    instr_label: str


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction in the totally ordered run trace."""

    seq: int
    thread: str
    instr_addr: int
    instr_label: str
    func: str
    occurrence: int


@dataclass
class StepOutcome:
    """What happened when one instruction was (or was not) executed."""

    executed: bool
    instr: Optional[Instruction] = None
    accesses: List[MemoryAccess] = field(default_factory=list)
    spawned: List[int] = field(default_factory=list)
    blocked: bool = False
    thread_done: bool = False
    failure: Optional[Failure] = None


# ----------------------------------------------------------------------
# Per-opcode handlers.  Each receives (machine, ctx, frame, instr) and
# consumes instr.decoded; `step` routes through _DISPATCH with a single
# dict probe.
# ----------------------------------------------------------------------
def _op_lock(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    # LOCK is special: a failed acquisition blocks without executing.
    out = StepOutcome(executed=True, instr=instr)
    name = instr.decoded[0]
    if m.locks.try_acquire(name, ctx.tid):
        ctx.locks_held.append(name)
        ctx.state = ThreadState.READY
        ctx.blocked_on = None
        m._record_trace(ctx, instr)
        frame.pc += 1
    else:
        ctx.state = ThreadState.BLOCKED
        ctx.blocked_on = name
        out.executed = False
        out.blocked = True
    return out


def _op_unlock(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    name = instr.decoded[0]
    woken = m.locks.release(name, ctx.tid)
    ctx.locks_held.remove(name)
    for tid in woken:
        waiter = m.threads[tid]
        waiter.state = ThreadState.READY
        waiter.blocked_on = None
        waiter.gen += 1
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_load(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    dst, expr = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ, occurrence))
    ctx.regs[dst] = m.memory.load(addr)
    frame.pc += 1
    return out


def _op_store(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    expr, src = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.WRITE, occurrence))
    m.memory.store(addr, m._dval(ctx, src))
    frame.pc += 1
    return out


def _op_inc(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    expr, delta = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                         occurrence))
    m.memory.store(addr, m.memory.load(addr) + delta)
    frame.pc += 1
    return out


def _op_mov(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    dst, src = instr.decoded
    ctx.regs[dst] = m._dval(ctx, src)
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_lea(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    dst, glob = instr.decoded
    ctx.regs[dst] = m.memory.global_addr(glob)
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_binop(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    dst, fn, lhs, rhs = instr.decoded
    ctx.regs[dst] = fn(m._dval(ctx, lhs), m._dval(ctx, rhs))
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_brz(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    if m._dval(ctx, instr.decoded[0]) == 0:
        frame.pc = instr.target_index
    else:
        frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_brnz(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    if m._dval(ctx, instr.decoded[0]) != 0:
        frame.pc = instr.target_index
    else:
        frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_jmp(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    frame.pc = instr.target_index
    return StepOutcome(executed=True, instr=instr)


def _op_call(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    frame.pc += 1
    ctx.frames.append(Frame(instr.decoded[0], 0))
    return StepOutcome(executed=True, instr=instr)


def _op_ret(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    ctx.frames.pop()
    if not ctx.frames:
        ctx.state = ThreadState.DONE
        out.thread_done = True
    return out


def _op_alloc(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    dst, size, tag, leak_tracked = instr.decoded
    ctx.regs[dst] = m.memory.alloc(size, tag, site=instr.name,
                                   leak_tracked=leak_tracked)
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_free(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    ptr = m._dval(ctx, instr.decoded[0])
    # Freeing writes the *whole* object (as KASAN poisons it), so the free
    # conflicts with accesses to any field of the object, not just its base.
    obj = m.memory.object_at(ptr, include_freed=True)
    if obj is not None and obj.base == ptr:
        for offset in range(0, obj.size, 8):
            out.accesses.append(
                m._record_access(ctx, instr, ptr + offset,
                                 AccessKind.WRITE, occurrence))
    else:
        out.accesses.append(
            m._record_access(ctx, instr, ptr, AccessKind.WRITE, occurrence))
    m.memory.free(ptr, site=instr.name)
    frame.pc += 1
    return out


def _op_spawn(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    func_name, arg = instr.decoded
    kind = (ThreadKind.KWORKER if instr.op is Op.QUEUE_WORK
            else ThreadKind.RCU)
    prefix = "kworker" if kind is ThreadKind.KWORKER else "rcu"
    child_name = f"{prefix}/{func_name}#{len(m.threads)}"
    child = m._add_thread(
        child_name, func_name, kind,
        regs={"a0": m._dval(ctx, arg)},
        spawned_by=ctx.name, spawn_instr=instr.name)
    m.spawn_events.append(SpawnEvent(
        seq=m._seq, parent=ctx.name, child=child_name,
        kind=kind, instr_label=instr.name))
    out.spawned.append(child.tid)
    frame.pc += 1
    return out


def _op_bug_on(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    cond, message = instr.decoded
    if m._dval(ctx, cond):
        raise KernelFault(FailureKind.ASSERTION,
                          message or f"BUG_ON at {instr.name}")
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


def _op_list_add(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    expr, elem = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                         occurrence))
    current = m.memory.load(addr)
    items = current if isinstance(current, tuple) else ()
    m.memory.store(addr, items + (m._dval(ctx, elem),))
    frame.pc += 1
    return out


def _op_list_del(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    expr, elem = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                         occurrence))
    current = m.memory.load(addr)
    items = list(current) if isinstance(current, tuple) else []
    value = m._dval(ctx, elem)
    if value in items:
        items.remove(value)
    m.memory.store(addr, tuple(items))
    frame.pc += 1
    return out


def _op_list_contains(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    dst, expr, elem = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ, occurrence))
    current = m.memory.load(addr)
    items = current if isinstance(current, tuple) else ()
    ctx.regs[dst] = int(m._dval(ctx, elem) in items)
    frame.pc += 1
    return out


def _op_cmpxchg(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    dst, expr, expected, new_value = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                         occurrence))
    old_value = m.memory.load(addr)
    if old_value == m._dval(ctx, expected):
        m.memory.store(addr, m._dval(ctx, new_value))
    ctx.regs[dst] = old_value
    frame.pc += 1
    return out


def _op_xchg(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    occurrence = m._record_trace(ctx, instr)
    out = StepOutcome(executed=True, instr=instr)
    dst, expr, new_value = instr.decoded
    addr = m._daddr(ctx, expr)
    out.accesses.append(
        m._record_access(ctx, instr, addr, AccessKind.READ_WRITE,
                         occurrence))
    ctx.regs[dst] = m.memory.load(addr)
    m.memory.store(addr, m._dval(ctx, new_value))
    frame.pc += 1
    return out


def _op_nop(m: "KernelMachine", ctx, frame, instr) -> StepOutcome:
    m._record_trace(ctx, instr)
    frame.pc += 1
    return StepOutcome(executed=True, instr=instr)


_DISPATCH: Dict[Op, Callable] = {
    Op.LOAD: _op_load,
    Op.STORE: _op_store,
    Op.INC: _op_inc,
    Op.MOV: _op_mov,
    Op.LEA: _op_lea,
    Op.BINOP: _op_binop,
    Op.BRZ: _op_brz,
    Op.BRNZ: _op_brnz,
    Op.JMP: _op_jmp,
    Op.CALL: _op_call,
    Op.RET: _op_ret,
    Op.ALLOC: _op_alloc,
    Op.FREE: _op_free,
    Op.LOCK: _op_lock,
    Op.UNLOCK: _op_unlock,
    Op.QUEUE_WORK: _op_spawn,
    Op.CALL_RCU: _op_spawn,
    Op.BUG_ON: _op_bug_on,
    Op.CMPXCHG: _op_cmpxchg,
    Op.XCHG: _op_xchg,
    Op.LIST_ADD: _op_list_add,
    Op.LIST_DEL: _op_list_del,
    Op.LIST_CONTAINS: _op_list_contains,
    Op.NOP: _op_nop,
}

assert set(_DISPATCH) == set(Op), "every opcode needs a dispatch handler"


class KernelMachine:
    """One bootable instance of the simulated kernel."""

    def __init__(
        self,
        image: KernelImage,
        threads: Sequence[ThreadSpec],
        globals_init: Optional[Dict[str, Any]] = None,
        coverage_cb: Optional[Callable[[str, int], None]] = None,
        leak_check: bool = True,
        setup: Sequence[ThreadSpec] = (),
    ) -> None:
        self.image = image
        self.memory = Memory()
        self.locks = LockTable()
        self.coverage_cb = coverage_cb
        self.leak_check = leak_check
        self.failure: Optional[Failure] = None
        self.access_log: List[MemoryAccess] = []
        self.trace: List[TraceEntry] = []
        self.spawn_events: List[SpawnEvent] = []
        self._seq = 0
        self.threads: List[ThreadContext] = []
        self._by_name: Dict[str, ThreadContext] = {}

        # Pre-define every global the image mentions (deterministic layout),
        # then apply the model's initial values.
        for name in self._referenced_globals():
            self.memory.define_global(name, 0)
        for name, value in (globals_init or {}).items():
            self.memory.define_global(name, value)

        # Setup calls (open/socket/...) run serially to completion before the
        # concurrent part of a slice, and their activity is not recorded:
        # they establish the pre-failure kernel state, like replaying the
        # non-concurrent prefix of an execution history (section 4.2).
        for spec in setup:
            ctx = self._add_thread(spec.name, spec.entry, spec.kind,
                                   regs=dict(spec.regs))
            while not ctx.done:
                if self.halted:
                    raise RuntimeError(
                        f"setup call {spec.name} crashed the kernel: "
                        f"{self.failure}")
                self.step(ctx.tid)
        #: Instructions interpreted to boot this machine (the serial setup
        #: prefix); a run resumed from a checkpoint skips exactly this work
        #: plus the checkpointed prefix.
        self.setup_steps = sum(t.steps for t in self.threads)
        # Fresh lists, not .clear(): snapshots capture the log lists as
        # length-bounded views, so a list that ever backed a snapshot must
        # never shrink in place.
        self.access_log = []
        self.trace = []
        self.spawn_events = []

        for spec in threads:
            self._add_thread(spec.name, spec.entry, spec.kind,
                             regs=dict(spec.regs))

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _referenced_globals(self) -> List[str]:
        names: List[str] = []
        seen = set()
        for func in self.image.functions.values():
            for instr in func.instructions:
                for operand in instr.operands:
                    if isinstance(operand, Global) and operand.name not in seen:
                        seen.add(operand.name)
                        names.append(operand.name)
        return names

    def _add_thread(self, name: str, entry: str, kind: ThreadKind,
                    regs: Optional[Dict[str, Any]] = None,
                    spawned_by: Optional[str] = None,
                    spawn_instr: Optional[str] = None) -> ThreadContext:
        if name in self._by_name:
            raise ValueError(f"duplicate thread name {name!r}")
        if entry not in self.image.functions:
            raise ValueError(f"thread entry {entry!r} is not a function")
        ctx = ThreadContext(
            tid=len(self.threads), name=name, kind=kind, entry=entry,
            regs=regs or {}, frames=[Frame(entry, 0)],
            spawned_by=spawned_by, spawn_instr=spawn_instr,
        )
        self.threads.append(ctx)
        self._by_name[name] = ctx
        return ctx

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture the machine's full mutable state (see
        :mod:`repro.kernel.snapshot`)."""
        from repro.kernel.snapshot import snapshot_machine
        return snapshot_machine(self)

    def restore(self, snapshot) -> None:
        """Put the machine into a previously captured state, rebuilding the
        thread list as needed."""
        from repro.kernel.snapshot import restore_machine
        restore_machine(self, snapshot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def thread(self, ref) -> ThreadContext:
        """Look a thread up by tid or name."""
        if ref.__class__ is str:
            return self._by_name[ref]
        if isinstance(ref, ThreadContext):
            return ref
        return self.threads[ref]

    @property
    def halted(self) -> bool:
        return self.failure is not None

    def all_done(self) -> bool:
        for t in self.threads:
            if t.state is not ThreadState.DONE:
                return False
        return True

    def runnable_threads(self) -> List[ThreadContext]:
        if self.halted:
            return []
        return [t for t in self.threads if t.runnable]

    def peek(self, ref) -> Optional[Instruction]:
        """The next instruction ``ref`` would execute, or ``None`` if the
        thread is done.  Blocked threads still report their pending LOCK."""
        ctx = self.thread(ref)
        if ctx.done or self.halted:
            return None
        frame = ctx.current_frame()
        func = self.image.functions[frame.func]
        return func.instructions[frame.pc]

    def resolve_access_addr(self, ref, instr: Instruction) -> Optional[int]:
        """The data address ``instr`` would access if the thread executed it
        now, or ``None`` for non-memory instructions.  This mirrors the AITIA
        hypervisor disassembling a breakpointed instruction to find the
        address to watch (paper section 4.3)."""
        if not instr.accesses_memory:
            return None
        ctx = self.thread(ref)
        if instr.op is Op.FREE:
            return self._value(ctx, instr.operands[0])
        expr = instr.operands[1] \
            if instr.op in (Op.LOAD, Op.LIST_CONTAINS, Op.CMPXCHG,
                            Op.XCHG) \
            else instr.operands[0]
        try:
            return self._effective_addr(ctx, expr)
        except KeyError:
            return None

    def next_occurrence(self, ref, instr_addr: int) -> int:
        """The occurrence index the next execution of ``instr_addr`` by this
        thread would have (1-based)."""
        ctx = self.thread(ref)
        return ctx.exec_counts.get(instr_addr, 0) + 1

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def _value(self, ctx: ThreadContext, src) -> Any:
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, Reg):
            return ctx.regs.get(src.name, 0)
        raise TypeError(f"bad value source {src!r}")

    def _effective_addr(self, ctx: ThreadContext, expr) -> int:
        if isinstance(expr, Global):
            return self.memory.global_addr(expr.name)
        if isinstance(expr, Deref):
            base = ctx.regs.get(expr.reg, 0)
            return base + expr.offset
        raise TypeError(f"bad address expression {expr!r}")

    def _dval(self, ctx: ThreadContext, src) -> Any:
        """Evaluate a decoded value source (``(IMM, v)`` / ``(REG, name)``)."""
        return src[1] if src[0] == IMM else ctx.regs.get(src[1], 0)

    def _daddr(self, ctx: ThreadContext, expr) -> int:
        """Evaluate a decoded address expression (``(GLOB, name)`` /
        ``(DEREF, reg, offset)``)."""
        if expr[0] == 2:  # GLOB — every referenced global is pre-defined
            return self.memory._globals[expr[1]]
        return ctx.regs.get(expr[1], 0) + expr[2]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, ref) -> StepOutcome:
        """Execute one instruction of the given thread.

        Blocked threads re-attempt their pending LOCK.  Stepping a done
        thread or a halted machine is an error — the scheduler above must
        not do it.
        """
        if self.halted:
            raise RuntimeError("machine has halted on a failure")
        ctx = self.thread(ref)
        if ctx.done:
            raise RuntimeError(f"thread {ctx.name} is done")
        ctx.gen += 1  # invalidate this thread's cached capture/key
        ctx.steps += 1
        if ctx.steps > MAX_THREAD_STEPS:
            raise RuntimeError(
                f"thread {ctx.name} exceeded {MAX_THREAD_STEPS} steps; "
                f"the model likely has an unbounded loop")

        frames = ctx.frames
        if not frames:
            raise RuntimeError(f"thread {ctx.name} has no active frame")
        frame = frames[-1]
        instr = self.image.functions[frame.func].instructions[frame.pc]

        if self.coverage_cb is not None and instr.leads_block:
            self.coverage_cb(ctx.name, instr.block_start)

        try:
            return _DISPATCH[instr.op](self, ctx, frame, instr)
        except KernelFault as fault:
            # Handlers record the trace entry before the access faults, so
            # the faulting instruction is already the last trace entry.
            self.failure = Failure(
                kind=fault.kind, thread=ctx.name, instr_label=instr.name,
                message=fault.message, data_addr=fault.data_addr,
                object_tag=fault.object_tag,
            )
            return StepOutcome(executed=True, instr=instr,
                               failure=self.failure)

    def _execute(self, ctx: ThreadContext, frame: Frame,
                 instr: Instruction) -> StepOutcome:
        """Execute one decoded instruction (dispatch-table entry point)."""
        return _DISPATCH[instr.op](self, ctx, frame, instr)

    def _record_trace(self, ctx: ThreadContext, instr: Instruction) -> int:
        self._seq += 1
        count = ctx.exec_counts.get(instr.addr, 0) + 1
        ctx.exec_counts[instr.addr] = count
        self.trace.append(TraceEntry(
            seq=self._seq, thread=ctx.name, instr_addr=instr.addr,
            instr_label=instr.name, func=instr.func, occurrence=count,
        ))
        return count

    def _record_access(self, ctx: ThreadContext, instr: Instruction,
                       data_addr: int, kind: AccessKind,
                       occurrence: int) -> MemoryAccess:
        access = MemoryAccess(
            seq=self._seq, thread=ctx.name, instr_addr=instr.addr,
            instr_label=instr.name, func=instr.func, data_addr=data_addr,
            kind=kind, occurrence=occurrence,
            lockset=frozenset(ctx.locks_held),
        )
        self.access_log.append(access)
        return access

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def finish(self) -> Optional[Failure]:
        """Run end-of-execution detectors (memory leaks).  Returns the run's
        failure, if any — either one that already halted the machine or one
        found now."""
        if self.failure is not None:
            return self.failure
        if self.leak_check and self.all_done():
            leaked = self.memory.live_leaked_objects()
            if leaked:
                obj = leaked[0]
                self.failure = Failure(
                    kind=FailureKind.MEMORY_LEAK,
                    instr_label=obj.alloc_site,
                    message=f"object {obj.tag} allocated at "
                            f"{obj.alloc_site} was never freed",
                    object_tag=obj.tag)
        return self.failure

    def report_deadlock(self, blocked: Sequence[ThreadContext]) -> Failure:
        """Record a deadlock failure (called by the scheduler when it proves
        no thread can make progress)."""
        names = ", ".join(t.name for t in blocked)
        waits = ", ".join(f"{t.name}->{t.blocked_on}" for t in blocked)
        instr_label = ""
        if blocked:
            pending = self.peek(blocked[0])
            if pending is not None:
                instr_label = pending.name
        self.failure = Failure(
            kind=FailureKind.DEADLOCK,
            thread=blocked[0].name if blocked else "",
            instr_label=instr_label,
            message=f"threads hung: {names} ({waits})")
        return self.failure
