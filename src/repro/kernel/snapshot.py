"""Full-fidelity machine snapshots: the kernel half of the checkpoint engine.

A :class:`MachineSnapshot` is a pure-data capture of everything a
:class:`~repro.kernel.machine.KernelMachine` mutates while running: memory,
the lock table, every thread (identity *and* state, so threads that do not
exist on the target machine are recreated), the global sequence counter and
the three run logs.  Restoring one rewinds a machine in place — forward or
backward — which is what lets the hypervisor resume a run mid-flight
instead of rebooting and re-interpreting the shared prefix (the QEMU
snapshot trick of paper section 4.3).

Log prefixes are stored as :class:`LogSlice` views over the machine's
append-only log lists — O(1) to capture regardless of how long the run has
been going.  Memory is captured as a structurally shared
:class:`~repro.kernel.memory.MemoryImage` (O(dirty)), and per-thread images
are generation-cached, so a checkpoint's cost tracks what changed since the
previous one, not the size of the machine.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from dataclasses import dataclass
from itertools import islice
from operator import attrgetter
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.kernel.memory import (MemoryImage, _canon_cells, _canon_globals,
                                 _canon_objects)
from repro.kernel.threads import ThreadContext, ThreadImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.machine import KernelMachine

_by_tid = attrgetter("tid")


class LogSlice(Sequence):
    """An immutable length-bounded view over an append-only log list.

    The machine's run logs only ever grow (a restore swaps in a *fresh*
    list, freezing the old backing), so a ``(backing, length)`` pair is a
    faithful prefix capture at O(1) cost — where tuple-copying the logs on
    every checkpoint used to make capture cost quadratic in run length.
    Pickles as a plain tuple, keeping the wire format self-contained.
    """

    __slots__ = ("_items", "_length")

    def __init__(self, backing, length: Optional[int] = None) -> None:
        self._items = backing
        self._length = len(backing) if length is None else length

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return islice(iter(self._items), self._length)

    def __getitem__(self, index):
        n = self._length
        if isinstance(index, slice):
            return tuple(self._items[i] for i in range(*index.indices(n)))
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("LogSlice index out of range")
        return self._items[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, (LogSlice, tuple, list)):
            return len(other) == self._length and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self):
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"LogSlice({self._length} entries)"

    def __reduce__(self):
        return (tuple, (tuple(self),))

#: Wire-format version for :func:`dumps_state` / :func:`loads_state`.
#: Version 2 envelopes carry machine state as content-addressed
#: :class:`CheckpointStore` references — a checkpoint's bytes cross each
#: process boundary at most once, after which only its key travels.
WIRE_VERSION = 2


@dataclass(frozen=True)
class MachineSnapshot:
    """Captured state of one machine.

    ``memory`` is a :class:`~repro.kernel.memory.MemoryImage` (legacy
    full-copy dicts are still restorable); the log fields are
    :class:`LogSlice` prefixes (tuples after a wire round trip).
    """

    memory: MemoryImage
    locks: dict
    threads: Tuple[ThreadImage, ...]
    seq: int
    trace: Sequence
    access_log: Sequence
    spawn_events: Sequence

    @property
    def thread_count(self) -> int:
        return len(self.threads)


def snapshot_machine(machine: "KernelMachine") -> MachineSnapshot:
    """Capture a machine (typically mid-run, before trying something).

    O(dirty since the last capture): memory emits a structurally shared
    image, unchanged threads return their cached images, and the run logs
    are captured as constant-time prefix views."""
    if machine.halted:
        raise ValueError("cannot snapshot a halted machine")
    return MachineSnapshot(
        memory=machine.memory.snapshot(),
        locks=machine.locks.snapshot(),
        threads=tuple(t.capture() for t in machine.threads),
        seq=machine._seq,
        trace=LogSlice(machine.trace),
        access_log=LogSlice(machine.access_log),
        spawn_events=LogSlice(machine.spawn_events),
    )


def _thread_state_key(image: ThreadImage) -> Tuple:
    state = image.state
    return (
        image.tid, image.name, image.kind.value, image.entry,
        state["state"].value,
        tuple(sorted(state["regs"].items())),
        tuple((fr.func, fr.pc) for fr in state["frames"]),
        tuple(state["locks_held"]),
        state["blocked_on"],
        tuple(sorted(state["exec_counts"].items())),
        # ``steps`` is deliberately excluded: it counts blocked re-attempts,
        # which two semantically identical prefixes may differ in, and it
        # feeds nothing but the runaway-thread limit.
    )


def _memory_key_parts(memory) -> Tuple:
    if isinstance(memory, MemoryImage):
        return memory.state_key_parts()
    return (
        _canon_cells(memory["cells"]),
        _canon_globals(memory["globals"]),
        _canon_objects(memory["objects"]),
        memory["next_global"],
        memory["next_heap"],
    )


def _locks_key(locks: dict) -> Tuple:
    return tuple((name, owner, tuple(waiters))
                 for name, (owner, waiters) in sorted(locks.items()))


def _state_key(memory, locks: dict,
               threads: Tuple[ThreadImage, ...]) -> Tuple:
    return _memory_key_parts(memory) + (
        _locks_key(locks),
        tuple(_thread_state_key(t) for t in sorted(threads, key=_by_tid)),
    )


def machine_state_key(machine: "KernelMachine") -> Tuple:
    """Canonical, hashable capture of a machine's *semantic* state.

    Two machines in the same lineage with equal keys behave identically
    from here on: memory contents, heap object metadata, lock ownership
    and wait queues, and every thread's control state are all included.
    The hypervisor uses key equality to detect that a reordered run has
    *converged* back onto its base run's state, at which point the base's
    already-computed suffix can be spliced instead of re-interpreted.

    Assembled from generation-cached component keys: a convergence probe
    after a step that touched one thread and a handful of cells only
    re-canonicalizes those components."""
    return machine.memory.state_key_parts() + (
        machine.locks.state_key(),
        tuple(t.state_key()
              for t in sorted(machine.threads, key=_by_tid)),
    )


def snapshot_state_key(snapshot: MachineSnapshot) -> Tuple:
    """:func:`machine_state_key` computed from a captured snapshot; a live
    machine and a snapshot of an equal state produce equal keys."""
    return _state_key(snapshot.memory, snapshot.locks, snapshot.threads)


class CheckpointStore:
    """Content-addressed store of serialized run checkpoints.

    A checkpoint's key is the SHA-256 digest of its pickle blob, so two
    sides of a process boundary that each hold a store agree on every
    key without coordination.  The fork-server fleet
    (:mod:`repro.engine.executors`) gives the parent one store and each
    resident worker its fork-inherited copy; :func:`dumps_state` then
    ships a checkpoint's bytes across a pipe at most once — afterwards
    only the 64-hex-character key travels.

    The store keeps strong references to both blob and object: a key
    handed to another process must stay resolvable for the lifetime of
    the executor that owns the store.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, bytes] = {}
        self._objects: Dict[str, object] = {}
        #: ``id(obj) -> key`` memo so repeatedly putting the same live
        #: checkpoint (every request of a LIFS round resumes from the
        #: same base) pickles it once, not once per request.
        self._key_by_id: Dict[int, str] = {}

    def put(self, obj) -> str:
        """Intern ``obj``; returns its content key."""
        key = self._key_by_id.get(id(obj))
        if key is not None:
            return key
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        key = hashlib.sha256(blob).hexdigest()
        if key not in self._objects:
            self._blobs[key] = blob
            self._objects[key] = obj
            # Memoize only objects the store retains.  A duplicate whose
            # key is already interned is discarded by this method; once it
            # is garbage-collected its id() can be reused by a *different*
            # checkpoint, and a memo entry for it would then resolve that
            # new object to the stale key — restoring the wrong machine.
            self._key_by_id[id(obj)] = key
        return key

    def get(self, key: str):
        """The interned object for ``key``; raises ``KeyError`` when the
        sender never shipped its blob to this side."""
        try:
            return self._objects[key]
        except KeyError:
            raise KeyError(
                f"checkpoint {key[:12]}… is not in this store "
                f"({len(self._objects)} entries) — the sender must inline "
                f"blobs for keys this side has never seen") from None

    def blob(self, key: str) -> bytes:
        """The pickle blob behind ``key``."""
        return self._blobs[key]

    def ingest(self, key: str, blob: bytes):
        """Adopt a blob shipped by the other side; returns the object."""
        obj = self._objects.get(key)
        if obj is not None:
            return obj
        obj = pickle.loads(blob)
        self._blobs[key] = blob
        self._objects[key] = obj
        self._key_by_id[id(obj)] = key
        return obj

    def keys(self) -> Iterable[str]:
        return self._blobs.keys()

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)


def _checkpoint_type():
    # Lazy: kernel must not import hypervisor at module scope (the
    # hypervisor is built on the kernel, not the other way around).
    from repro.hypervisor.snapshot import RunCheckpoint
    return RunCheckpoint


class _StorePickler(pickle.Pickler):
    """Externalizes :class:`~repro.hypervisor.snapshot.RunCheckpoint`
    values into a :class:`CheckpointStore` as persistent ids."""

    def __init__(self, file, *, store: CheckpointStore,
                 known: Optional[Set[str]], fresh: Dict[str, bytes]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store
        self._known = known
        self._fresh = fresh
        self._checkpoint = _checkpoint_type()

    def persistent_id(self, obj):
        if not isinstance(obj, self._checkpoint):
            return None
        key = self._store.put(obj)
        if self._known is None:
            self._fresh[key] = self._store.blob(key)
        elif key not in self._known:
            self._fresh[key] = self._store.blob(key)
            self._known.add(key)
        return key


class _StoreUnpickler(pickle.Unpickler):
    """Resolves persistent ids back out of a :class:`CheckpointStore`."""

    def __init__(self, file, *, store: Optional[CheckpointStore]) -> None:
        super().__init__(file)
        self._store = store

    def persistent_load(self, key):
        if self._store is None:
            raise ValueError(
                "payload references checkpoint-store keys but no store= "
                "was given to loads_state(); pass the CheckpointStore "
                "shared with the sender")
        return self._store.get(key)


_V1_UPGRADE_HINT = (
    "snapshot wire version 1 is no longer readable: since WIRE_VERSION=2 "
    "the dumps_state() envelope carries content-addressed checkpoint "
    "references (repro.kernel.snapshot.CheckpointStore) instead of inline "
    "machine state.  Re-serialize the payload with this tree's "
    "dumps_state(), or route dispatch through "
    "repro.engine.executors.make_executor(), which manages the store for "
    "both sides of the pipe.")


def dumps_state(obj, *, store: Optional[CheckpointStore] = None,
                known: Optional[Set[str]] = None) -> bytes:
    """Serialize schedules, machine snapshots and run checkpoints for a
    process boundary (the fork-server fleet of
    :mod:`repro.engine.executors`).

    Everything the hypervisor ships across a wave — :class:`Schedule`,
    :class:`MachineSnapshot`,
    :class:`~repro.hypervisor.snapshot.RunCheckpoint`, :class:`RunResult`
    — is built from module-level frozen dataclasses and enums, so the
    round trip is exact: a deserialized checkpoint restores to the same
    :func:`snapshot_state_key` as the original.  The payload is wrapped
    in a version envelope so a reader can reject a foreign format
    instead of mis-restoring it.

    With ``store=`` given, every :class:`RunCheckpoint` reachable from
    ``obj`` is replaced by its content key; blobs the receiver has not
    seen (keys missing from ``known``) are inlined alongside the body so
    the receiver's store can ingest them.  ``known`` is the sender's
    record of what the receiver holds — keys shipped here are added to
    it, so each checkpoint crosses the pipe once.  Without ``store=``
    checkpoints still travel as store blobs, just inlined every time
    (self-contained payloads, e.g. tests and one-shot handoffs).
    """
    body = io.BytesIO()
    fresh: Dict[str, bytes] = {}
    local_store = store if store is not None else CheckpointStore()
    pickler = _StorePickler(body, store=local_store,
                            known=known if store is not None else None,
                            fresh=fresh)
    pickler.dump(obj)
    return pickle.dumps((WIRE_VERSION, fresh, body.getvalue()),
                        protocol=pickle.HIGHEST_PROTOCOL)


def loads_state(data: bytes, *, store: Optional[CheckpointStore] = None,
                known: Optional[Set[str]] = None):
    """Inverse of :func:`dumps_state`; rejects foreign wire versions.

    Inlined checkpoint blobs are ingested into ``store`` (and recorded
    in ``known``) before the body is deserialized; checkpoint references
    resolve out of the store, so a checkpoint received twice is the same
    object both times.  A v1 payload (inline machine state) is rejected
    with the upgrade path; so is a reference-carrying payload when no
    ``store=`` is given.
    """
    envelope = pickle.loads(data)
    if not isinstance(envelope, tuple) or len(envelope) not in (2, 3):
        raise ValueError("not a dumps_state payload")
    version = envelope[0]
    if version == 1 and len(envelope) == 2:
        raise ValueError(_V1_UPGRADE_HINT)
    if version != WIRE_VERSION or len(envelope) != 3:
        raise ValueError(f"unsupported snapshot wire version {version!r} "
                         f"(expected {WIRE_VERSION})")
    _, fresh, body = envelope
    local_store = store
    if fresh:
        if local_store is None:
            local_store = CheckpointStore()
        for key, blob in fresh.items():
            local_store.ingest(key, blob)
            if known is not None:
                known.add(key)
    return _StoreUnpickler(io.BytesIO(body), store=local_store).load()


def restore_machine(machine: "KernelMachine",
                    snapshot: MachineSnapshot) -> None:
    """Put a machine into exactly the captured state.

    The thread list is rebuilt from the snapshot's thread images: threads
    spawned after the capture point are discarded, threads missing from the
    target (captured after a spawn, restored onto a pre-spawn state) are
    recreated.  Logs are reset to the captured prefixes and the failure
    flag is cleared — a crash that happened after the capture never
    happened.
    """
    for image in snapshot.threads:
        if image.entry not in machine.image.functions:
            raise ValueError(
                f"snapshot does not belong to this machine: thread "
                f"{image.name!r} enters unknown function {image.entry!r}")
    machine.memory.restore(snapshot.memory)
    machine.locks.restore(snapshot.locks)
    # Rebuild the thread roster, reusing the machine's existing contexts
    # where possible.  A context whose cached capture *is* the image being
    # restored (generation-stamped identity) has not run since that
    # capture and needs no work at all; a context with matching identity
    # is rewound in place and re-stamped so its next capture() returns
    # the shared image without copying.  Only genuinely new threads are
    # materialized from scratch.
    by_name = machine._by_name
    threads = []
    for image in snapshot.threads:
        ctx = by_name.get(image.name)
        if ctx is not None:
            if ctx._cap is image and ctx._cap_gen == ctx.gen:
                threads.append(ctx)
                continue
            if (ctx.tid == image.tid and ctx.entry == image.entry
                    and ctx.kind is image.kind
                    and ctx.spawned_by == image.spawned_by
                    and ctx.spawn_instr == image.spawn_instr):
                ctx.restore(image.state)
                ctx._cap = image
                ctx._cap_gen = ctx.gen
                threads.append(ctx)
                continue
        threads.append(ThreadContext.from_image(image))
    machine.threads = threads
    machine._by_name = {ctx.name: ctx for ctx in threads}
    machine._seq = snapshot.seq
    machine.trace = list(snapshot.trace)
    machine.access_log = list(snapshot.access_log)
    machine.spawn_events = list(snapshot.spawn_events)
    machine.failure = None
