"""Full-fidelity machine snapshots: the kernel half of the checkpoint engine.

A :class:`MachineSnapshot` is a pure-data capture of everything a
:class:`~repro.kernel.machine.KernelMachine` mutates while running: memory,
the lock table, every thread (identity *and* state, so threads that do not
exist on the target machine are recreated), the global sequence counter and
the three run logs.  Restoring one rewinds a machine in place — forward or
backward — which is what lets the hypervisor resume a run mid-flight
instead of rebooting and re-interpreting the shared prefix (the QEMU
snapshot trick of paper section 4.3).

Log prefixes are stored as tuples of the machine's frozen record types
(``TraceEntry`` / ``MemoryAccess`` / ``SpawnEvent``), so snapshots share
them structurally with the live machine; capture cost is dict copies, not
deep copies of the history.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.kernel.threads import ThreadContext, ThreadImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.machine import KernelMachine

#: Wire-format version for :func:`dumps_state` / :func:`loads_state`.
WIRE_VERSION = 1


@dataclass(frozen=True)
class MachineSnapshot:
    """Captured state of one machine."""

    memory: dict
    locks: dict
    threads: Tuple[ThreadImage, ...]
    seq: int
    trace: Tuple
    access_log: Tuple
    spawn_events: Tuple

    @property
    def thread_count(self) -> int:
        return len(self.threads)


def snapshot_machine(machine: "KernelMachine") -> MachineSnapshot:
    """Capture a machine (typically mid-run, before trying something)."""
    if machine.halted:
        raise ValueError("cannot snapshot a halted machine")
    return MachineSnapshot(
        memory=machine.memory.snapshot(),
        locks=machine.locks.snapshot(),
        threads=tuple(t.capture() for t in machine.threads),
        seq=machine._seq,
        trace=tuple(machine.trace),
        access_log=tuple(machine.access_log),
        spawn_events=tuple(machine.spawn_events),
    )


def _thread_state_key(image: ThreadImage) -> Tuple:
    state = image.state
    return (
        image.tid, image.name, image.kind.value, image.entry,
        state["state"].value,
        tuple(sorted(state["regs"].items())),
        tuple((fr.func, fr.pc) for fr in state["frames"]),
        tuple(state["locks_held"]),
        state["blocked_on"],
        tuple(sorted(state["exec_counts"].items())),
        # ``steps`` is deliberately excluded: it counts blocked re-attempts,
        # which two semantically identical prefixes may differ in, and it
        # feeds nothing but the runaway-thread limit.
    )


def _state_key(memory: dict, locks: dict,
               threads: Tuple[ThreadImage, ...]) -> Tuple:
    return (
        tuple(sorted(memory["cells"].items())),
        tuple(sorted(memory["globals"].items())),
        tuple((base, o.size, o.tag, o.state.value, o.leak_tracked,
               o.alloc_site, o.free_site)
              for base, o in sorted(memory["objects"].items())),
        memory["next_global"],
        memory["next_heap"],
        tuple((name, owner, tuple(waiters))
              for name, (owner, waiters) in sorted(locks.items())),
        tuple(_thread_state_key(t) for t in sorted(threads,
                                                   key=lambda t: t.tid)),
    )


def machine_state_key(machine: "KernelMachine") -> Tuple:
    """Canonical, hashable capture of a machine's *semantic* state.

    Two machines in the same lineage with equal keys behave identically
    from here on: memory contents, heap object metadata, lock ownership
    and wait queues, and every thread's control state are all included.
    The hypervisor uses key equality to detect that a reordered run has
    *converged* back onto its base run's state, at which point the base's
    already-computed suffix can be spliced instead of re-interpreted."""
    return _state_key(
        machine.memory.snapshot(), machine.locks.snapshot(),
        tuple(t.capture() for t in machine.threads))


def snapshot_state_key(snapshot: MachineSnapshot) -> Tuple:
    """:func:`machine_state_key` computed from a captured snapshot; a live
    machine and a snapshot of an equal state produce equal keys."""
    return _state_key(snapshot.memory, snapshot.locks, snapshot.threads)


def dumps_state(obj) -> bytes:
    """Serialize schedules, machine snapshots and run checkpoints for a
    process boundary (the parallel wave dispatch of
    :mod:`repro.hypervisor.waves`).

    Everything the hypervisor ships across a wave — :class:`Schedule`,
    :class:`MachineSnapshot`,
    :class:`~repro.hypervisor.snapshot.RunCheckpoint`, :class:`RunResult`
    — is built from module-level frozen dataclasses and enums, so the
    round trip is exact: a deserialized checkpoint restores to the same
    :func:`snapshot_state_key` as the original.  The payload is wrapped
    in a version envelope so a reader can reject a foreign format
    instead of mis-restoring it.
    """
    return pickle.dumps((WIRE_VERSION, obj),
                        protocol=pickle.HIGHEST_PROTOCOL)


def loads_state(data: bytes):
    """Inverse of :func:`dumps_state`; rejects unknown wire versions."""
    envelope = pickle.loads(data)
    if not isinstance(envelope, tuple) or len(envelope) != 2:
        raise ValueError("not a dumps_state payload")
    version, obj = envelope
    if version != WIRE_VERSION:
        raise ValueError(f"unsupported snapshot wire version {version!r} "
                         f"(expected {WIRE_VERSION})")
    return obj


def restore_machine(machine: "KernelMachine",
                    snapshot: MachineSnapshot) -> None:
    """Put a machine into exactly the captured state.

    The thread list is rebuilt from the snapshot's thread images: threads
    spawned after the capture point are discarded, threads missing from the
    target (captured after a spawn, restored onto a pre-spawn state) are
    recreated.  Logs are reset to the captured prefixes and the failure
    flag is cleared — a crash that happened after the capture never
    happened.
    """
    for image in snapshot.threads:
        if image.entry not in machine.image.functions:
            raise ValueError(
                f"snapshot does not belong to this machine: thread "
                f"{image.name!r} enters unknown function {image.entry!r}")
    machine.memory.restore(snapshot.memory)
    machine.locks.restore(snapshot.locks)
    threads = [ThreadContext.from_image(image) for image in snapshot.threads]
    machine.threads = threads
    machine._by_name = {ctx.name: ctx for ctx in threads}
    machine._seq = snapshot.seq
    machine.trace = list(snapshot.trace)
    machine.access_log = list(snapshot.access_log)
    machine.spawn_events = list(snapshot.spawn_events)
    machine.failure = None
