"""Lock table of the simulated kernel.

Locks are named and non-recursive.  A ``LOCK`` on a held lock blocks the
thread; ``UNLOCK`` wakes every waiter (they re-contend, and the external
scheduler decides who runs).  The lockset a thread holds at each memory
access is recorded so lock-ordered conflicting accesses are not reported
as data races, and so Causality Analysis can treat whole critical sections
as single flip units for liveness (paper section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class LockInfo:
    owner: Optional[int] = None  # tid
    waiters: List[int] = field(default_factory=list)


class LockTable:
    """All named locks of one machine instance.

    Mutations bump a generation counter; the canonical state key and the
    checkpoint snapshot are cached against it, so convergence probes on
    lock-quiet stretches never rebuild them.
    """

    def __init__(self) -> None:
        self._locks: Dict[str, LockInfo] = {}
        self.gen = 0
        self._key: tuple = ()
        self._key_gen = -1
        self._snap: dict = {}
        self._snap_gen = -1

    def _info(self, name: str) -> LockInfo:
        if name not in self._locks:
            self._locks[name] = LockInfo()
        return self._locks[name]

    def try_acquire(self, name: str, tid: int) -> bool:
        """Acquire ``name`` for ``tid`` if free; otherwise register ``tid``
        as a waiter and return ``False``."""
        info = self._info(name)
        if info.owner is None:
            info.owner = tid
            self.gen += 1
            return True
        if info.owner == tid:
            raise RuntimeError(
                f"thread {tid} recursively acquires lock {name!r}")
        if tid not in info.waiters:
            info.waiters.append(tid)
            self.gen += 1
        return False

    def release(self, name: str, tid: int) -> List[int]:
        """Release ``name``; returns the tids to wake."""
        info = self._info(name)
        if info.owner != tid:
            raise RuntimeError(
                f"thread {tid} releases lock {name!r} owned by {info.owner}")
        info.owner = None
        woken, info.waiters = info.waiters, []
        self.gen += 1
        return woken

    def owner(self, name: str) -> Optional[int]:
        return self._locks.get(name, LockInfo()).owner

    def held_by(self, tid: int) -> Set[str]:
        return {name for name, info in self._locks.items() if info.owner == tid}

    def snapshot(self) -> dict:
        # Idle locks (no owner, no waiters) are indistinguishable from
        # never-touched ones — ``_info`` recreates them lazily — so
        # checkpoints skip them.  The dict is cached per generation; callers
        # must treat it as immutable.
        if self._snap_gen != self.gen:
            self._snap = {
                name: (info.owner, tuple(info.waiters))
                for name, info in self._locks.items()
                if info.owner is not None or info.waiters
            }
            self._snap_gen = self.gen
        return self._snap

    def state_key(self) -> tuple:
        if self._key_gen != self.gen:
            self._key = tuple(
                (name, info.owner, tuple(info.waiters))
                for name, info in sorted(self._locks.items())
                if info.owner is not None or info.waiters)
            self._key_gen = self.gen
        return self._key

    def restore(self, snap: dict) -> None:
        self._locks = {
            name: LockInfo(owner=owner, waiters=list(waiters))
            for name, (owner, waiters) in snap.items()
        }
        self.gen += 1
