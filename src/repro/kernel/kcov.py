"""kcov analogue: basic-block coverage collection.

AITIA's user agent registers a kcov callback fired at every basic-block
entry and then maps covered blocks to their memory-accessing instructions
using a disassembly of the kernel (paper section 4.3).  :class:`Kcov`
provides the callback side; the mapping side is
:meth:`repro.kernel.program.KernelImage.memory_instructions_in_block`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kernel.instructions import Instruction
from repro.kernel.program import KernelImage


class Kcov:
    """Collects per-thread basic-block coverage for one run."""

    def __init__(self, image: KernelImage) -> None:
        self.image = image
        self._covered: Dict[str, List[int]] = {}
        self._seen: Set[Tuple[str, int]] = set()

    def __call__(self, thread: str, block_start: int) -> None:
        """The callback handed to :class:`~repro.kernel.machine.KernelMachine`."""
        self._covered.setdefault(thread, []).append(block_start)
        self._seen.add((thread, block_start))

    def covered_blocks(self, thread: str) -> List[int]:
        """Block entries in execution order (with repetitions, like a raw
        kcov buffer)."""
        return list(self._covered.get(thread, []))

    def unique_blocks(self, thread: str) -> Set[int]:
        return {b for t, b in self._seen if t == thread}

    def memory_instructions(self, thread: str) -> List[Instruction]:
        """The memory-accessing instructions reachable from the thread's
        covered blocks — the user agent's view of what can be interleaved."""
        instrs: List[Instruction] = []
        seen: Set[int] = set()
        for block in self._covered.get(thread, []):
            for instr in self.image.memory_instructions_in_block(block):
                if instr.addr not in seen:
                    seen.add(instr.addr)
                    instrs.append(instr)
        return instrs

    def reset(self) -> None:
        self._covered.clear()
        self._seen.clear()
