"""Thread contexts of the simulated kernel.

Following the paper (footnote 2), a "thread" is any kernel execution
context: a system call, a deferred-work kworker, or an RCU softirq
callback.  Background threads are created dynamically by ``QUEUE_WORK`` /
``CALL_RCU`` instructions; the scheduler above the machine decides when
they run, which is how AITIA exercises the asynchronous bug patterns of
Figure 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class ThreadKind(enum.Enum):
    SYSCALL = "syscall"
    KWORKER = "kworker"
    RCU = "rcu_softirq"
    #: A hardware interrupt handler: runs to completion, non-preemptible.
    #: The paper leaves IRQ contexts as future work (section 4.6); the
    #: reproduction models them as injectable, atomic execution contexts.
    IRQ = "irq"


class ThreadState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"  # waiting on a lock
    DONE = "done"


@dataclass
class Frame:
    """One call-stack frame: the function being executed and the index of
    the next instruction to execute inside it."""

    func: str
    pc: int = 0


@dataclass
class ThreadContext:
    """The full state of one simulated kernel thread."""

    tid: int
    name: str
    kind: ThreadKind
    entry: str
    state: ThreadState = ThreadState.READY
    regs: Dict[str, Any] = field(default_factory=dict)
    frames: List[Frame] = field(default_factory=list)
    locks_held: List[str] = field(default_factory=list)
    blocked_on: Optional[str] = None
    #: Name of the thread whose instruction spawned this one (for kworkers
    #: and RCU callbacks); the execution-history model records it as the
    #: invocation source.
    spawned_by: Optional[str] = None
    spawn_instr: Optional[str] = None
    #: Per-instruction execution counters, keyed by code address; gives the
    #: occurrence index used to address accesses inside loops.
    exec_counts: Dict[int, int] = field(default_factory=dict)
    steps: int = 0
    #: Mutation generation: bumped once per executed step (and on wake /
    #: restore).  Captures and canonical keys are cached against it, so an
    #: unchanged thread is never re-copied or re-sorted.
    gen: int = 0
    _cap: Optional["ThreadImage"] = field(default=None, repr=False,
                                          compare=False)
    _cap_gen: int = field(default=-1, repr=False, compare=False)
    _key: Optional[tuple] = field(default=None, repr=False, compare=False)
    _key_gen: int = field(default=-1, repr=False, compare=False)

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.READY

    def current_frame(self) -> Frame:
        if not self.frames:
            raise RuntimeError(f"thread {self.name} has no active frame")
        return self.frames[-1]

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "regs": dict(self.regs),
            "frames": [Frame(fr.func, fr.pc) for fr in self.frames],
            "locks_held": list(self.locks_held),
            "blocked_on": self.blocked_on,
            "exec_counts": dict(self.exec_counts),
            "steps": self.steps,
        }

    def restore(self, snap: dict) -> None:
        self.state = snap["state"]
        self.regs = dict(snap["regs"])
        self.frames = [Frame(fr.func, fr.pc) for fr in snap["frames"]]
        self.locks_held = list(snap["locks_held"])
        self.blocked_on = snap["blocked_on"]
        self.exec_counts = dict(snap["exec_counts"])
        self.steps = snap["steps"]
        self.gen += 1

    def capture(self) -> "ThreadImage":
        """Identity plus mutable state: enough to *recreate* the thread on a
        machine where it does not exist (unlike :meth:`snapshot`, which only
        rewinds an existing context).

        The image is cached against :attr:`gen`: a thread that has not run
        since the previous checkpoint returns the same (immutable) image
        without copying its registers or counters again."""
        if self._cap is None or self._cap_gen != self.gen:
            self._cap = ThreadImage(
                tid=self.tid, name=self.name, kind=self.kind,
                entry=self.entry, spawned_by=self.spawned_by,
                spawn_instr=self.spawn_instr, state=self.snapshot())
            self._cap_gen = self.gen
        return self._cap

    def state_key(self) -> tuple:
        """Canonical per-thread component of the machine-state key, cached
        against :attr:`gen`."""
        if self._key is None or self._key_gen != self.gen:
            self._key = (
                self.tid, self.name, self.kind.value, self.entry,
                self.state.value,
                tuple(sorted(self.regs.items())),
                tuple((fr.func, fr.pc) for fr in self.frames),
                tuple(self.locks_held), self.blocked_on,
                tuple(sorted(self.exec_counts.items())))
            self._key_gen = self.gen
        return self._key

    @classmethod
    def from_image(cls, image: "ThreadImage") -> "ThreadContext":
        ctx = cls(tid=image.tid, name=image.name, kind=image.kind,
                  entry=image.entry, spawned_by=image.spawned_by,
                  spawn_instr=image.spawn_instr)
        ctx.restore(image.state)
        return ctx


@dataclass(frozen=True)
class ThreadImage:
    """Full capture of one thread, including the identity fields a plain
    state snapshot omits; machine-level checkpoints carry these so a restore
    can rebuild the thread list from scratch (threads spawned after the
    capture point, or discarded by an earlier rewind, come back)."""

    tid: int
    name: str
    kind: ThreadKind
    entry: str
    spawned_by: Optional[str]
    spawn_instr: Optional[str]
    state: dict
