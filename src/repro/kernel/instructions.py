"""Instruction set of the simulated kernel.

The IR is a small register machine.  Each instruction carries an optional
human-readable *label* (``"A6"``); labels double as branch targets and as the
names used in causality chains, mirroring how the paper refers to racing
instructions (``A6 => B12``).

Operands come in two flavours:

* value sources: :class:`Reg` (a thread-local register) or :class:`Imm`
  (an integer constant);
* address expressions: :class:`Global` (the address of a named global cell)
  or :class:`Deref` (the address held in a register plus an offset).

Memory is only touched by ``LOAD``/``STORE``/``INC`` and the ``LIST_*``
helpers; everything else manipulates registers or control flow.  This keeps
the set of memory-accessing instructions — the only instructions LIFS ever
interleaves — easy to enumerate, exactly as AITIA's user agent enumerates
them by disassembling basic blocks (paper section 4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Reg:
    """A thread-local register, addressed by name."""

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate integer constant."""

    value: int

    def __repr__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Global:
    """The address of a named global memory cell."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class Deref:
    """The address ``regs[reg] + offset`` (pointer dereference)."""

    reg: str
    offset: int = 0

    def __repr__(self) -> str:
        if self.offset:
            return f"[%{self.reg}+{self.offset}]"
        return f"[%{self.reg}]"


Source = Union[Reg, Imm]
AddrExpr = Union[Global, Deref]


class Op(enum.Enum):
    """Opcodes of the simulated kernel IR."""

    LOAD = "load"  # dst_reg, addr_expr
    STORE = "store"  # addr_expr, src
    INC = "inc"  # addr_expr, src(delta) — one read-modify-write access
    MOV = "mov"  # dst_reg, src
    LEA = "lea"  # dst_reg, Global — take the address of a global
    BINOP = "binop"  # dst_reg, operator, lhs(src), rhs(src)
    BRZ = "brz"  # cond(src), target_label — branch if zero
    BRNZ = "brnz"  # cond(src), target_label — branch if non-zero
    JMP = "jmp"  # target_label
    CALL = "call"  # function_name
    RET = "ret"  # return from current function
    ALLOC = "alloc"  # dst_reg, size, tag, leak_tracked
    FREE = "free"  # addr(src: pointer value)
    LOCK = "lock"  # lock_name
    UNLOCK = "unlock"  # lock_name
    QUEUE_WORK = "queue_work"  # function_name, arg(src) — spawn a kworker
    CALL_RCU = "call_rcu"  # function_name, arg(src) — spawn an RCU callback
    BUG_ON = "bug_on"  # cond(src), message — fail if cond is non-zero
    CMPXCHG = "cmpxchg"  # dst_reg, addr_expr, expected(src), new(src)
    XCHG = "xchg"  # dst_reg, addr_expr, new(src) — atomic swap
    LIST_ADD = "list_add"  # addr_expr(list cell), elem(src)
    LIST_DEL = "list_del"  # addr_expr(list cell), elem(src)
    LIST_CONTAINS = "list_contains"  # dst_reg, addr_expr(list cell), elem(src)
    NOP = "nop"


#: Binary operators accepted by ``BINOP``.
BINARY_OPERATORS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}

#: Opcodes that read and/or write shared memory.  Only these instructions
#: can participate in a data race, and only these are candidate scheduling
#: points for LIFS.  FREE counts as a write to the object (as KASAN/KCSAN
#: treat it), so free-vs-use pairs are detectable data races.
MEMORY_OPS = frozenset(
    {Op.LOAD, Op.STORE, Op.INC, Op.FREE, Op.CMPXCHG, Op.XCHG,
     Op.LIST_ADD, Op.LIST_DEL, Op.LIST_CONTAINS}
)

#: Opcodes that terminate a basic block.
BLOCK_TERMINATORS = frozenset({Op.BRZ, Op.BRNZ, Op.JMP, Op.RET})


#: Decoded-operand tags (see :func:`decode_operands`): value sources decode
#: to ``(IMM, value)`` / ``(REG, name)``, address expressions to
#: ``(GLOB, name)`` / ``(DEREF, reg, offset)``.  Plain tuples with integer
#: tags keep the interpreter's per-step operand evaluation free of
#: ``isinstance`` checks.
IMM, REG, GLOB, DEREF = 0, 1, 2, 3


def _decode_value(src) -> Tuple:
    if isinstance(src, Imm):
        return (IMM, src.value)
    if isinstance(src, Reg):
        return (REG, src.name)
    raise TypeError(f"bad value source {src!r}")


def _decode_addr(expr) -> Tuple:
    if isinstance(expr, Global):
        return (GLOB, expr.name)
    if isinstance(expr, Deref):
        return (DEREF, expr.reg, expr.offset)
    raise TypeError(f"bad address expression {expr!r}")


def decode_operands(instr: "Instruction") -> Tuple:
    """Precompute the op-specific decoded-operand tuple for ``instr``.

    Called once at image assembly; the interpreter's dispatch handlers
    consume the decoded tuple instead of re-unpacking (and type-testing)
    ``instr.operands`` on every executed step."""
    op, ops = instr.op, instr.operands
    if op is Op.LOAD:
        return (ops[0].name, _decode_addr(ops[1]))
    if op is Op.STORE:
        return (_decode_addr(ops[0]), _decode_value(ops[1]))
    if op is Op.INC:
        return (_decode_addr(ops[0]), ops[1].value)
    if op is Op.MOV:
        return (ops[0].name, _decode_value(ops[1]))
    if op is Op.LEA:
        return (ops[0].name, ops[1].name)
    if op is Op.BINOP:
        return (ops[0].name, BINARY_OPERATORS[ops[1]],
                _decode_value(ops[2]), _decode_value(ops[3]))
    if op in (Op.BRZ, Op.BRNZ, Op.BUG_ON):
        return (_decode_value(ops[0]),) + tuple(ops[1:])
    if op is Op.ALLOC:
        return (ops[0].name, ops[1], ops[2], ops[3])
    if op is Op.FREE:
        return (_decode_value(ops[0]),)
    if op in (Op.QUEUE_WORK, Op.CALL_RCU):
        return (ops[0], _decode_value(ops[1]))
    if op in (Op.LIST_ADD, Op.LIST_DEL):
        return (_decode_addr(ops[0]), _decode_value(ops[1]))
    if op is Op.LIST_CONTAINS:
        return (ops[0].name, _decode_addr(ops[1]), _decode_value(ops[2]))
    if op is Op.CMPXCHG:
        return (ops[0].name, _decode_addr(ops[1]),
                _decode_value(ops[2]), _decode_value(ops[3]))
    if op is Op.XCHG:
        return (ops[0].name, _decode_addr(ops[1]), _decode_value(ops[2]))
    # JMP / CALL / RET / LOCK / UNLOCK / NOP carry their operands raw.
    return tuple(ops)


class Instruction:
    """One instruction of the simulated kernel.

    ``addr`` (the code address) and positional metadata — including the
    decoded-operand cache, the resolved branch-target index and the
    enclosing basic block — are assigned when the enclosing
    :class:`~repro.kernel.program.KernelImage` is assembled and must not be
    mutated afterwards.
    """

    __slots__ = ("op", "operands", "label", "target", "addr", "func", "index",
                 "decoded", "target_index", "block_start", "leads_block")

    def __init__(
        self,
        op: Op,
        operands: Tuple = (),
        label: Optional[str] = None,
        target: Optional[str] = None,
    ) -> None:
        self.op = op
        self.operands = operands
        self.label = label
        self.target = target  # branch target label, resolved at assembly
        self.addr: int = -1
        self.func: str = ""
        self.index: int = -1
        #: Op-specific decoded operand tuple (assembly-time cache).
        self.decoded: Tuple = ()
        #: Instruction index of ``target`` within the function, or -1.
        self.target_index: int = -1
        #: Start address of the enclosing basic block.
        self.block_start: int = -1
        #: Whether this instruction is its basic block's leader.
        self.leads_block: bool = False

    @property
    def accesses_memory(self) -> bool:
        """Whether the instruction reads or writes shared memory."""
        return self.op in MEMORY_OPS

    @property
    def reads_memory(self) -> bool:
        return self.op in (Op.LOAD, Op.INC, Op.CMPXCHG, Op.XCHG,
                           Op.LIST_ADD, Op.LIST_DEL, Op.LIST_CONTAINS)

    @property
    def writes_memory(self) -> bool:
        return self.op in (Op.STORE, Op.INC, Op.FREE, Op.CMPXCHG,
                           Op.XCHG, Op.LIST_ADD, Op.LIST_DEL)

    @property
    def is_terminator(self) -> bool:
        return self.op in BLOCK_TERMINATORS

    @property
    def name(self) -> str:
        """The display name: the explicit label or ``func+index``."""
        if self.label is not None:
            return self.label
        return f"{self.func}+{self.index}"

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.operands:
            parts.append(", ".join(repr(o) for o in self.operands))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        body = " ".join(parts)
        return f"<{self.name}: {body}>"
