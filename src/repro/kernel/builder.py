"""Fluent builder for simulated-kernel programs.

The corpus models every bug as a small "subsystem" written with this DSL::

    b = ProgramBuilder()
    with b.function("fanout_add") as f:
        f.load("r0", f.g("po_running"), label="A2")
        f.brz("r0", "A3_ret", label="A2b")
        f.alloc("r1", 16, tag="match", label="A5")
        f.store(f.g("po_fanout"), f.r("r1"), label="A6")
        f.call("fanout_link", label="A8")
        f.ret(label="A3_ret")
    image = b.build()

Registers are referred to by bare name; ``f.g(name)`` produces a global
address operand and ``f.r(name)``/``f.i(value)`` produce value sources.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

from repro.kernel.instructions import (
    BINARY_OPERATORS,
    AddrExpr,
    Deref,
    Global,
    Imm,
    Instruction,
    Op,
    Reg,
    Source,
)
from repro.kernel.program import Function, KernelImage


def _as_source(value: Union[Source, int, str]) -> Source:
    """Coerce ``int`` to :class:`Imm` and ``str`` to :class:`Reg`."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, int):
        return Imm(value)
    if isinstance(value, str):
        return Reg(value)
    raise TypeError(f"cannot use {value!r} as a value source")


def _as_addr(value: Union[AddrExpr, str]) -> AddrExpr:
    """Coerce ``str`` to :class:`Global`."""
    if isinstance(value, (Global, Deref)):
        return value
    if isinstance(value, str):
        return Global(value)
    raise TypeError(f"cannot use {value!r} as an address expression")


class FunctionBuilder:
    """Accumulates instructions for one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: List[Instruction] = []

    # -- operand helpers ------------------------------------------------
    @staticmethod
    def g(name: str) -> Global:
        """The address of global ``name``."""
        return Global(name)

    @staticmethod
    def r(name: str) -> Reg:
        """Register ``name`` as a value source."""
        return Reg(name)

    @staticmethod
    def i(value: int) -> Imm:
        """Immediate ``value``."""
        return Imm(value)

    @staticmethod
    def at(reg: str, offset: int = 0) -> Deref:
        """The address held in register ``reg`` plus ``offset``."""
        return Deref(reg, offset)

    # -- emitters --------------------------------------------------------
    def _emit(self, op: Op, operands=(), label: Optional[str] = None,
              target: Optional[str] = None) -> Instruction:
        instr = Instruction(op, tuple(operands), label=label, target=target)
        self._instructions.append(instr)
        return instr

    def load(self, dst: str, addr, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.LOAD, (Reg(dst), _as_addr(addr)), label)

    def store(self, addr, src, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.STORE, (_as_addr(addr), _as_source(src)), label)

    def inc(self, addr, delta: int = 1, label: Optional[str] = None) -> Instruction:
        """One read-modify-write access (handy for racy statistics counters)."""
        return self._emit(Op.INC, (_as_addr(addr), Imm(delta)), label)

    def mov(self, dst: str, src, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.MOV, (Reg(dst), _as_source(src)), label)

    def lea(self, dst: str, global_name: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.LEA, (Reg(dst), Global(global_name)), label)

    def binop(self, dst: str, operator: str, lhs, rhs,
              label: Optional[str] = None) -> Instruction:
        if operator not in BINARY_OPERATORS:
            raise ValueError(f"unknown operator {operator!r}")
        return self._emit(
            Op.BINOP, (Reg(dst), operator, _as_source(lhs), _as_source(rhs)),
            label)

    def brz(self, cond, target: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.BRZ, (_as_source(cond),), label, target=target)

    def brnz(self, cond, target: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.BRNZ, (_as_source(cond),), label, target=target)

    def jmp(self, target: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.JMP, (), label, target=target)

    def call(self, func: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.CALL, (func,), label)

    def ret(self, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.RET, (), label)

    def alloc(self, dst: str, size: int, tag: str,
              leak_tracked: bool = False,
              label: Optional[str] = None) -> Instruction:
        return self._emit(Op.ALLOC, (Reg(dst), size, tag, leak_tracked), label)

    def free(self, src, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.FREE, (_as_source(src),), label)

    def lock(self, name: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.LOCK, (name,), label)

    def unlock(self, name: str, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.UNLOCK, (name,), label)

    def queue_work(self, func: str, arg=0, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.QUEUE_WORK, (func, _as_source(arg)), label)

    def call_rcu(self, func: str, arg=0, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.CALL_RCU, (func, _as_source(arg)), label)

    def bug_on(self, cond, message: str = "", label: Optional[str] = None) -> Instruction:
        return self._emit(Op.BUG_ON, (_as_source(cond), message), label)

    def cmpxchg(self, dst: str, addr, expected, new,
                label: Optional[str] = None) -> Instruction:
        """Atomic compare-and-exchange: one read-modify-write access that
        stores ``new`` iff the cell equals ``expected``; the old value
        lands in ``dst`` either way."""
        return self._emit(
            Op.CMPXCHG,
            (Reg(dst), _as_addr(addr), _as_source(expected),
             _as_source(new)), label)

    def xchg(self, dst: str, addr, new,
             label: Optional[str] = None) -> Instruction:
        """Atomic exchange: swap ``new`` into the cell, old value into
        ``dst``."""
        return self._emit(Op.XCHG, (Reg(dst), _as_addr(addr),
                                    _as_source(new)), label)

    def list_add(self, addr, elem, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.LIST_ADD, (_as_addr(addr), _as_source(elem)), label)

    def list_del(self, addr, elem, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.LIST_DEL, (_as_addr(addr), _as_source(elem)), label)

    def list_contains(self, dst: str, addr, elem,
                      label: Optional[str] = None) -> Instruction:
        return self._emit(
            Op.LIST_CONTAINS, (Reg(dst), _as_addr(addr), _as_source(elem)),
            label)

    def nop(self, label: Optional[str] = None) -> Instruction:
        return self._emit(Op.NOP, (), label)

    def build(self) -> Function:
        return Function(self.name, list(self._instructions))


class ProgramBuilder:
    """Accumulates functions and produces a :class:`KernelImage`."""

    def __init__(self) -> None:
        self._functions: List[Function] = []

    @contextmanager
    def function(self, name: str) -> Iterator[FunctionBuilder]:
        fb = FunctionBuilder(name)
        yield fb
        if not fb._instructions or fb._instructions[-1].op is not Op.RET:
            fb.ret()
        self._functions.append(fb.build())

    def build(self) -> KernelImage:
        return KernelImage(self._functions)
