"""The two-tier result store: hot in-memory LRU over cold sharded JSONL.

The daemon's steady state is repeat traffic — the same crash signature
submitted thousands of times.  PR 1's :class:`ResultStore` already
answers repeats without re-diagnosis; this module splits that cache
into two tiers so the *hot path never touches disk*:

* **hot** — :class:`HotTier`, a bounded in-memory LRU of digest →
  record.  A hit is a dict lookup; thousands of duplicate submissions
  are answered in microseconds.
* **cold** — :class:`ShardedColdStore`, N append-only JSONL shards
  (:class:`~repro.service.store.ResultStore` files, offset-indexed)
  selected by signature prefix (:func:`~repro.service.signature
  .shard_index`).  A cold hit costs one seek + one line parse and
  promotes the record into the hot tier.

:class:`TieredStore` composes the two behind the same ``get``/``put``
surface the triage service uses, so it drops into any code that takes
a result store.  Writes go through to the cold tier first (durability
before visibility), then populate the hot tier.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.service.signature import shard_index
from repro.service.store import ResultStore

#: Default hot-tier capacity (records, not bytes — diagnosis records
#: are small dicts).
DEFAULT_HOT_CAPACITY = 1024
#: Default cold-tier shard count.
DEFAULT_STORE_SHARDS = 8


class HotTier:
    """Bounded LRU of digest → record; thread-safe, purely in memory."""

    def __init__(self, capacity: int = DEFAULT_HOT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("hot-tier capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> Optional[dict]:
        with self._lock:
            record = self._entries.get(digest)
            if record is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return record

    def put(self, digest: str, record: dict) -> None:
        with self._lock:
            self._entries[digest] = record
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries  # no LRU touch, no counter

    def __len__(self) -> int:
        return len(self._entries)


class ShardedColdStore:
    """N offset-indexed JSONL result stores, sharded by digest prefix.

    Sharding keeps each append-only file (and its one-scan open) small
    as the store grows, and gives the journal/story a stable on-disk
    layout: digest X always lives in ``shard-of(X)``, across restarts.
    """

    def __init__(self, directory: str,
                 shards: int = DEFAULT_STORE_SHARDS) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stores: List[ResultStore] = [
            ResultStore(os.path.join(directory, f"shard-{i:02d}.jsonl"))
            for i in range(shards)]

    def _store_for(self, digest: str) -> ResultStore:
        return self.stores[shard_index(digest, len(self.stores))]

    def get(self, digest: str) -> Optional[dict]:
        return self._store_for(digest).get(digest)

    def put(self, digest: str, record: dict) -> None:
        self._store_for(digest).put(digest, record)

    def __contains__(self, digest: str) -> bool:
        return digest in self._store_for(digest)

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

    def digests(self) -> Iterator[str]:
        for store in self.stores:
            yield from store.digests()

    def records(self) -> Iterator[Tuple[str, dict]]:
        """All ``(digest, record)`` pairs, shard by shard (each shard
        reuses its offset index — one seek per record)."""
        for store in self.stores:
            yield from store.records()

    def compact(self) -> None:
        for store in self.stores:
            store.compact()

    def close(self) -> None:
        for store in self.stores:
            store.close()

    def __repr__(self) -> str:
        return (f"<ShardedColdStore {self.directory}: "
                f"{len(self.stores)} shard(s), {len(self)} record(s)>")


class TieredStore:
    """Hot LRU in front of the sharded cold tier, one store surface.

    ``lookup`` reports *which* tier answered so the daemon can count
    hot vs cold hits; ``get``/``put`` keep the plain
    :class:`ResultStore` contract for code that doesn't care.
    """

    def __init__(self, directory: Optional[str] = None,
                 hot_capacity: int = DEFAULT_HOT_CAPACITY,
                 shards: int = DEFAULT_STORE_SHARDS,
                 cold=None) -> None:
        self.hot = HotTier(hot_capacity)
        if cold is not None:
            self.cold = cold
        elif directory is not None:
            self.cold = ShardedColdStore(directory, shards)
        else:
            self.cold = ResultStore()
        self.cold_hits = 0

    # ------------------------------------------------------------------
    def lookup(self, digest: str) -> Tuple[Optional[dict], str]:
        """The record and the tier that served it (``"hot"``,
        ``"cold"``, or ``""`` for a miss)."""
        record = self.hot.get(digest)
        if record is not None:
            return record, "hot"
        record = self.cold.get(digest)
        if record is not None:
            self.cold_hits += 1
            self.hot.put(digest, record)  # promote
            return record, "cold"
        return None, ""

    def get(self, digest: str) -> Optional[dict]:
        record, _ = self.lookup(digest)
        return record

    def put(self, digest: str, record: dict) -> None:
        self.cold.put(digest, record)  # durability before visibility
        self.hot.put(digest, record)

    def __contains__(self, digest: str) -> bool:
        return digest in self.hot or digest in self.cold

    def __len__(self) -> int:
        return len(self.cold)

    def records(self) -> Iterator[Tuple[str, dict]]:
        """Every persisted ``(digest, record)`` pair, straight from the
        cold tier (authoritative; the hot tier is a strict subset)."""
        return self.cold.records()

    def stats(self) -> Dict[str, int]:
        lookups = self.hot.hits + self.hot.misses
        return {
            "hot_hits": self.hot.hits,
            "hot_misses": self.hot.misses,
            "hot_evictions": self.hot.evictions,
            "hot_size": len(self.hot),
            "cold_hits": self.cold_hits,
            "cold_size": len(self.cold),
            "lookups": lookups,
        }

    def close(self) -> None:
        close = getattr(self.cold, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        return (f"<TieredStore hot {len(self.hot)}/{self.hot.capacity} "
                f"cold {len(self.cold)}>")
