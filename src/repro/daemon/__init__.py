"""repro.daemon — the long-running, internet-facing triage daemon.

``repro serve`` turns the batch crash-triage verb into an always-on
intake service (ROADMAP item 3): a fuzzing fleet POSTs ``.crash``
artifacts at it around the clock, repeat signatures are answered from
a two-tier cache without touching the pipeline, and accepted work is
journaled so nothing is lost across a restart — soft or hard.

The layer sits *above* ``repro.service`` and reuses its vocabulary
(signatures, jobs, the worker pool, the offset-indexed result store):

* :mod:`repro.daemon.protocol` — minimal HTTP/1.1 over asyncio
  streams (no third-party deps);
* :mod:`repro.daemon.tiers` — hot in-memory LRU over cold sharded
  JSONL result stores;
* :mod:`repro.daemon.queue` — the persistent, sharded, bounded work
  queue with its recovery journal;
* :mod:`repro.daemon.tenants` — per-tenant token buckets and quotas;
* :mod:`repro.daemon.server` — routing, dedup, admission, the drain
  loop, and the ``/metrics`` exposition;
* :mod:`repro.daemon.lifecycle` — config, signals, the ``repro
  serve`` entrypoint;
* :mod:`repro.daemon.worker` — the worker entry (real pipeline or the
  pluggable test stub);
* :mod:`repro.daemon.client` — the matching asyncio client the tests,
  load benchmark and CI smoke script submit through.

See ``docs/SERVICE.md`` for the HTTP protocol, tenancy model, journal
format and tier layout.
"""

from repro.daemon.client import DaemonClient
from repro.daemon.lifecycle import DaemonConfig, run_daemon, start_daemon
from repro.daemon.queue import JournaledWorkQueue
from repro.daemon.server import DaemonMetrics, TriageDaemon
from repro.daemon.tenants import TenantPolicy, TenantTable, TokenBucket
from repro.daemon.tiers import HotTier, ShardedColdStore, TieredStore
from repro.daemon.worker import resolve_diagnoser, stub_diagnose_job

__all__ = [
    "DaemonClient",
    "DaemonConfig",
    "DaemonMetrics",
    "HotTier",
    "JournaledWorkQueue",
    "ShardedColdStore",
    "TenantPolicy",
    "TenantTable",
    "TieredStore",
    "TokenBucket",
    "TriageDaemon",
    "resolve_diagnoser",
    "run_daemon",
    "start_daemon",
    "stub_diagnose_job",
]
