"""Worker entries the daemon's drain loop dispatches jobs to.

The default is the triage service's real worker
(:func:`repro.service.triage.diagnose_job` — rebuild the crash, run
the full AITIA pipeline through :mod:`repro.engine`).  ``repro serve
--diagnoser module:function`` swaps in any other module-level callable
with the same ``payload dict → record dict`` contract; tests and load
benchmarks point it at :func:`stub_diagnose_job`, which answers
instantly (optionally sleeping ``REPRO_STUB_DELAY_S`` seconds to model
diagnosis cost) without touching the corpus registry.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Union

Diagnoser = Callable[[dict], dict]

#: Environment knob for :func:`stub_diagnose_job`: seconds to sleep per
#: job, modelling diagnosis cost in load and recovery tests.
STUB_DELAY_ENV = "REPRO_STUB_DELAY_S"


def default_diagnoser() -> Diagnoser:
    from repro.service.triage import diagnose_job
    return diagnose_job


def resolve_diagnoser(spec: Union[None, str, Diagnoser]) -> Diagnoser:
    """A worker callable from a config value.

    ``None`` → the real pipeline worker; a callable → itself; a
    ``"module:function"`` string → that attribute, imported.  The
    callable must be module-level (worker processes may need to pickle
    it under the ``spawn`` start method).
    """
    if spec is None:
        return default_diagnoser()
    if callable(spec):
        return spec
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"diagnoser spec {spec!r} is not 'module:function'")
    import importlib
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"{module_name!r} has no attribute {attr!r}") from exc
    if not callable(fn):
        raise ValueError(f"{spec!r} is not callable")
    return fn


def stub_diagnose_job(payload: dict,
                      delay_s: Optional[float] = None) -> dict:
    """Instant canned diagnosis — the load-test / smoke worker.

    Returns a record with the same shape as the real worker's so the
    store, the summary rendering, and the job-status endpoint all work
    unchanged.
    """
    if delay_s is None:
        delay_s = float(os.environ.get(STUB_DELAY_ENV, "0") or 0)
    if delay_s > 0:
        time.sleep(delay_s)
    bug_id = payload.get("bug_id", "?")
    return {"bug_id": bug_id, "mode": payload.get("mode", "artifact"),
            "row": {"bug_id": bug_id, "reproduced": True,
                    "chain": f"stub({payload.get('digest', '')})",
                    "lifs_schedules": 0, "ca_schedules": 0}}
