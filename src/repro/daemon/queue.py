"""The persistent sharded work queue behind the intake daemon.

Accepted work must survive a daemon restart — including a hard kill —
so every accepted job is journaled *before* its HTTP 202 goes out, and
every completion is journaled after its result is persisted to the
store.  The journal is JSONL, sharded by signature digest
(:func:`~repro.service.signature.shard_index`) into
``queue-<NN>.journal`` files under the data directory:

* ``{"op": "push", "job_id": ..., "digest": ..., "priority": ...,
  "timeout_s": ..., "tenant": ..., "payload": {...}}``
* ``{"op": "done", "job_id": ..., "outcome": ...}``

Recovery replays each shard: a ``push`` without a matching ``done`` is
a journaled job the daemon owes an answer for and is re-enqueued
exactly once (in original priority/FIFO order); a completed job is
dropped.  The drain loop re-checks the result store before
re-diagnosing, so a job that finished-but-wasn't-marked (killed
between the store append and the ``done`` record) is answered from
cache rather than re-run.  Replay also compacts: each shard is
rewritten holding only the still-pending pushes, so the journal's size
is bounded by queue depth, not by lifetime throughput.

Writes are flushed to the OS on every append — a killed *process*
loses nothing (the page cache survives it); surviving a machine crash
would need ``fsync`` per accept, which this deliberately does not pay.

In memory the queue is the service's :class:`~repro.service.queue
.JobQueue` (priority + FIFO within a priority) with a bounded depth:
a push past ``max_depth`` raises :class:`~repro.service.queue
.QueueFull` *before* anything is journaled, and the server sheds the
submission with a 429.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, TextIO

from repro.service.queue import JobQueue, QueueFull, TriageJob
from repro.service.signature import shard_index

#: Default journal shard count.
DEFAULT_QUEUE_SHARDS = 4
#: Default bounded depth (the backpressure threshold).
DEFAULT_MAX_DEPTH = 256

__all__ = ["JournaledWorkQueue", "QueueFull", "DEFAULT_QUEUE_SHARDS",
           "DEFAULT_MAX_DEPTH"]


class JournaledWorkQueue:
    """Bounded priority queue whose accepted work survives restart."""

    def __init__(self, directory: str,
                 shards: int = DEFAULT_QUEUE_SHARDS,
                 max_depth: Optional[int] = DEFAULT_MAX_DEPTH) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.shards = shards
        self._queue = JobQueue(max_depth=max_depth)
        self._lock = threading.Lock()
        self._writers: Dict[int, TextIO] = {}
        #: Jobs recovered from the journal at open, already enqueued.
        self.recovered: List[TriageJob] = []
        #: Journal lines that failed to parse at open.
        self.skipped_lines = 0
        self._replay_and_compact()

    # -- journal files --------------------------------------------------
    def _shard_path(self, shard: int) -> str:
        return os.path.join(self.directory, f"queue-{shard:02d}.journal")

    def _writer(self, shard: int) -> TextIO:
        writer = self._writers.get(shard)
        if writer is None:
            writer = open(self._shard_path(shard), "a")
            self._writers[shard] = writer
        return writer

    def _append(self, shard: int, entry: dict) -> None:
        writer = self._writer(shard)
        writer.write(json.dumps(entry, sort_keys=True) + "\n")
        writer.flush()

    def _shard_of(self, digest: str) -> int:
        return shard_index(digest, self.shards)

    # -- recovery -------------------------------------------------------
    def _replay_and_compact(self) -> None:
        pending: List[dict] = []  # push entries, in file order per shard
        for shard in range(self.shards):
            path = self._shard_path(shard)
            if not os.path.exists(path):
                continue
            pushes: "Dict[str, dict]" = {}
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        op = entry["op"]
                    except (ValueError, KeyError, TypeError):
                        self.skipped_lines += 1
                        continue
                    if op == "push" and "job_id" in entry:
                        pushes[entry["job_id"]] = entry
                    elif op == "done":
                        pushes.pop(entry.get("job_id"), None)
            survivors = list(pushes.values())
            # Compact: the shard now holds only what is still owed.
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                for entry in survivors:
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
            os.replace(tmp, path)
            pending.extend(survivors)
        # Priority order first, original acceptance order within it —
        # the same order JobQueue would have served them in.
        pending.sort(key=lambda e: e.get("priority", 0))
        for entry in pending:
            job = TriageJob(job_id=entry["job_id"],
                            payload=entry.get("payload", {}),
                            priority=entry.get("priority", 0),
                            timeout_s=entry.get("timeout_s", 300.0))
            # Recovered work is never shed: it was accepted before the
            # restart, so it bypasses the depth bound.
            saved, self._queue.max_depth = self._queue.max_depth, None
            try:
                self._queue.push(job)
            finally:
                self._queue.max_depth = saved
            self.recovered.append(job)

    # -- the queue surface ----------------------------------------------
    def push(self, job: TriageJob, tenant: str = "") -> None:
        """Accept one job: journal it, then enqueue it.

        Raises :class:`QueueFull` (nothing journaled) when the bounded
        depth is reached — the caller sheds the submission.
        """
        digest = job.payload.get("digest", job.job_id)
        with self._lock:
            if self._queue.full:
                raise QueueFull(
                    f"queue at bounded depth {self._queue.max_depth}")
            self._append(self._shard_of(digest), {
                "op": "push", "job_id": job.job_id, "digest": digest,
                "priority": job.priority, "timeout_s": job.timeout_s,
                "tenant": tenant, "payload": job.payload})
            self._queue.push(job)

    def pop_batch(self, n: int) -> List[TriageJob]:
        """Up to ``n`` jobs in priority order (may be empty)."""
        with self._lock:
            batch: List[TriageJob] = []
            while len(batch) < n and self._queue:
                batch.append(self._queue.pop())
            return batch

    def mark_done(self, job: TriageJob) -> None:
        """Journal a completion (call *after* the result is persisted,
        so a crash in between re-runs rather than loses the job)."""
        digest = job.payload.get("digest", job.job_id)
        with self._lock:
            self._append(self._shard_of(digest), {
                "op": "done", "job_id": job.job_id,
                "outcome": job.outcome.value})

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def max_depth(self) -> Optional[int]:
        return self._queue.max_depth

    def __len__(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        with self._lock:
            for writer in self._writers.values():
                writer.close()
            self._writers.clear()

    def __repr__(self) -> str:
        return (f"<JournaledWorkQueue {self.directory}: depth "
                f"{self.depth}/{self.max_depth}, {self.shards} shard(s)>")
