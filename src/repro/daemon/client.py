"""Minimal asyncio HTTP/1.1 client for the intake daemon.

The test suite, the load benchmark, and the CI smoke script all need to
talk to ``repro serve`` without a third-party HTTP library; this is the
client-side counterpart of :mod:`repro.daemon.protocol` — keep-alive
connections, ``Content-Length`` framing, JSON bodies.  It is *not* a
general HTTP client (no redirects, no chunking, no TLS) and is not part
of the daemon's own runtime path.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Response:
    """One parsed HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")


class DaemonClient:
    """One keep-alive connection to a running daemon.

    Reconnects transparently when the server closed the connection
    (shed responses and protocol errors are ``Connection: close``).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str, body: bytes = b"",
                      headers: Optional[Dict[str, str]] = None) -> Response:
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}",
                f"Content-Length: {len(body)}"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                           + body)
        await self._writer.drain()
        response = await self._read_response()
        if response.headers.get("connection", "").lower() == "close":
            await self.close()
        return response

    async def _read_response(self) -> Response:
        raw = await self._reader.readuntil(b"\r\n\r\n")
        lines = raw.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return Response(status=status, headers=headers, body=body)

    # -- convenience ----------------------------------------------------
    async def submit(self, artifact_text: str, tenant: str = "",
                     priority: Optional[int] = None) -> Response:
        """POST one rendered crash artifact to ``/submit``."""
        headers: Dict[str, str] = {}
        if tenant:
            headers["X-Tenant"] = tenant
        if priority is not None:
            headers["X-Priority"] = str(priority)
        return await self.request("POST", "/submit",
                                  artifact_text.encode("utf-8"), headers)

    async def wait_for_job(self, job_id: str, timeout_s: float = 30.0,
                           poll_s: float = 0.02) -> dict:
        """Poll ``GET /job/<id>`` until the job is terminal."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            response = await self.request("GET", f"/job/{job_id}")
            payload = response.json()
            if payload.get("status") not in ("pending", "running"):
                return payload
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"job {job_id!r} still "
                                   f"{payload.get('status')!r} after "
                                   f"{timeout_s}s")
            await asyncio.sleep(poll_s)
