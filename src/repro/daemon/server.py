"""The intake server: routing, dedup, admission, and the drain loop.

:class:`TriageDaemon` is the long-running form of the batch
:class:`~repro.service.triage.TriageService`: the same
intake → signature → dedup → store lookup → worker pool spine, but
always-on behind an asyncio HTTP front end and backed by the
persistent journaled queue so accepted work survives a restart.

Request lifecycle of ``POST /submit``:

1. tenant admission (:mod:`repro.daemon.tenants`) — over-rate or
   over-quota submissions are shed with a 429 before the body is even
   parsed;
2. artifact parse + crash signature (the same fingerprint the batch
   verb dedups by);
3. result-store lookup through the two-tier cache
   (:mod:`repro.daemon.tiers`) — a repeat signature is answered 200
   ``cache_hit`` from memory (hot) or one disk seek (cold), never
   re-diagnosed;
4. active-job dedup — a signature already queued or running folds into
   the existing job (202 ``duplicate``);
5. journal + enqueue (:mod:`repro.daemon.queue`) — journaled *before*
   the 202 ``accepted`` goes out, or shed 429 when the bounded queue
   is full.

The drain loop pops priority batches off the queue and runs them on
the triage worker pool (through :mod:`repro.engine`) in an executor
thread, so the event loop keeps answering while diagnoses run.  Every
counter is mirrored into a :mod:`repro.observe` tracer and ``GET
/metrics`` renders *those* counters, so the exposition and the trace
tell one story.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.observe.export import render_exposition
from repro.observe.tracer import Tracer
from repro.service.artifacts import ArtifactParseError, CrashArtifact
from repro.engine.executors import make_executor
from repro.service.metrics import Histogram, ServiceMetrics
from repro.service.queue import JobOutcome, QueueFull, TriageJob
from repro.service.signature import signature_of_text
from repro.service.triage import EMPTY_INTAKE_MESSAGE
from repro.policy import RECORD_DIGEST_PREFIX, ExperienceIndex
from repro.daemon import protocol
from repro.daemon.queue import JournaledWorkQueue
from repro.daemon.tenants import DEFAULT_TENANT, TenantTable
from repro.daemon.tiers import TieredStore
from repro.daemon.worker import resolve_diagnoser


class DaemonMetrics(ServiceMetrics):
    """Service counters under the ``daemon.`` namespace plus the
    latency histograms the ``/metrics`` endpoint exposes."""

    HISTOGRAMS = ("handle_seconds", "warm_handle_seconds",
                  "diagnosis_seconds", "queue_wait_seconds")

    def __init__(self, tracer=None) -> None:
        super().__init__(tracer=tracer, prefix="daemon")
        self.histograms: Dict[str, Histogram] = {
            name: Histogram() for name in self.HISTOGRAMS}

    def observe_latency(self, name: str, seconds: float) -> None:
        self.histograms[name].observe(seconds)


class TriageDaemon:
    """The always-on triage service behind ``repro serve``."""

    def __init__(self, config) -> None:
        self.config = config
        self.tracer = config.tracer if config.tracer is not None else Tracer()
        self._owns_tracer = config.tracer is None
        self.metrics = DaemonMetrics(tracer=self.tracer)
        self.store = TieredStore(directory=config.store_dir,
                                 hot_capacity=config.hot_capacity,
                                 shards=config.store_shards)
        self.queue = JournaledWorkQueue(config.queue_dir,
                                        shards=config.queue_shards,
                                        max_depth=config.max_depth)
        self.tenants = TenantTable(config.tenant_policy)
        #: The daemon's experience index: under ``policy="adaptive"``,
        #: seeded from the cold tier's persisted experience records at
        #: boot (so learning survives restarts), grown live as jobs
        #: settle, snapshotted into adaptive job payloads.
        self.experience = ExperienceIndex()
        if config.policy != "static":
            self.experience.load(self.store)
        self.diagnose = resolve_diagnoser(config.diagnoser)
        #: The drain loop's job executor — fleet workers stay resident
        #: across drain batches, so the daemon's steady state pays no
        #: fork per diagnosis.
        self.pool = make_executor(worker=self.diagnose, jobs=config.jobs,
                                  retry=config.retry)
        #: job_id -> job, every job this daemon has ever owned.
        self._jobs: Dict[str, TriageJob] = {}
        #: digest -> job_id for dedup (kept after completion: a done
        #: job's digest answers from the store, or reports its outcome).
        self._by_digest: Dict[str, str] = {}
        self._accepted_at: Dict[str, float] = {}
        self._running = 0
        self.paused = config.paused
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._stopping = False
        self.shutdown_event = asyncio.Event()
        self._adopt_recovered()

    # -- boot -----------------------------------------------------------
    def _adopt_recovered(self) -> None:
        """Re-register journal-recovered jobs as accepted work."""
        for job in self.queue.recovered:
            self._jobs[job.job_id] = job
            self._by_digest[job.payload.get("digest", job.job_id)] = \
                job.job_id
            self._accepted_at[job.job_id] = time.monotonic()
            tenant = job.payload.get("tenant", DEFAULT_TENANT)
            self.tenants.note_accepted(tenant)
            self.metrics.incr("accepted")
            self.metrics.incr("recovered")

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=protocol.MAX_HEADER_BYTES)
        self._drain_task = asyncio.ensure_future(self._drain_loop())

    @property
    def port(self) -> int:
        sockets = self._server.sockets if self._server else ()
        return sockets[0].getsockname()[1] if sockets else 0

    # -- connections ----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await protocol.read_request(
                        reader, max_body=self.config.max_body_bytes)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.json_response(
                        exc.status, {"error": exc.detail},
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._stopping
                writer.write(self._route(request, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    OSError):  # pragma: no cover — peer vanished
                pass

    # -- routing --------------------------------------------------------
    def _route(self, request: protocol.Request, keep_alive: bool) -> bytes:
        method, path = request.method, request.path
        if path == "/submit":
            if method != "POST":
                return protocol.json_response(
                    405, {"error": "POST /submit"}, keep_alive)
            return self._submit(request, keep_alive)
        if method != "GET":
            return protocol.json_response(
                405, {"error": f"{method} not allowed"}, keep_alive)
        if path.startswith("/job/"):
            return self._job_status(path[len("/job/"):], keep_alive)
        if path.startswith("/result/"):
            return self._result(path[len("/result/"):], keep_alive)
        if path == "/metrics":
            return protocol.text_response(200, self.render_metrics(),
                                          keep_alive)
        if path == "/healthz":
            health = {
                "status": "stopping" if self._stopping else "ok",
                "paused": self.paused,
                "queue_depth": self.queue.depth,
                "in_flight": self.in_flight}
            if not self._jobs and not self.queue.depth:
                # The batch verb's empty-intake message, verbatim —
                # zero reports is "nothing to do" in both front ends.
                health["message"] = EMPTY_INTAKE_MESSAGE
            return protocol.json_response(200, health, keep_alive)
        return protocol.json_response(404, {"error": f"no route {path}"},
                                      keep_alive)

    # -- intake ---------------------------------------------------------
    def _submit(self, request: protocol.Request, keep_alive: bool) -> bytes:
        started = time.perf_counter()
        self.metrics.incr("submissions")
        tenant = request.header("x-tenant", DEFAULT_TENANT) or DEFAULT_TENANT
        if self._stopping:
            self.metrics.incr("shed_stopping")
            return protocol.json_response(
                503, {"error": "shutting down"}, False)
        admitted, reason = self.tenants.admit(tenant)
        if not admitted:
            self.metrics.incr(f"shed_{reason}")
            return protocol.json_response(
                429, {"error": reason, "tenant": tenant}, keep_alive)
        raw_priority = request.header("x-priority", "0") or "0"
        try:
            priority = int(raw_priority)
        except ValueError:
            self.metrics.incr("rejected")
            return protocol.json_response(
                400, {"error": f"bad X-Priority {raw_priority!r}"},
                keep_alive)
        try:
            artifact = CrashArtifact.parse(
                request.body.decode("utf-8", errors="replace"))
            signature = signature_of_text(artifact.crash_text)
        except (ArtifactParseError, ValueError) as exc:
            self.metrics.incr("rejected")
            return protocol.json_response(
                400, {"error": f"malformed artifact: {exc}"}, keep_alive)
        digest = signature.digest

        record, tier = self.store.lookup(digest)
        if record is not None:
            self.metrics.incr("cache_hits")
            self.metrics.incr(f"cache_hits_{tier}")
            elapsed = time.perf_counter() - started
            self.metrics.observe_latency("handle_seconds", elapsed)
            self.metrics.observe_latency("warm_handle_seconds", elapsed)
            return protocol.json_response(200, {
                "status": "cache_hit", "digest": digest, "tier": tier,
                "result": record}, keep_alive)

        job_id = self._by_digest.get(digest)
        if job_id is not None:
            job = self._jobs[job_id]
            if not job.done:
                job.duplicates.append(tenant)
                self.metrics.incr("deduped")
                self.metrics.observe_latency(
                    "handle_seconds", time.perf_counter() - started)
                return protocol.json_response(202, {
                    "status": "duplicate", "job_id": job_id,
                    "digest": digest}, keep_alive)
            # Terminal but not cached: the earlier attempt failed or
            # timed out.  Report that rather than silently re-running.
            self.metrics.incr("deduped")
            return protocol.json_response(200, {
                "status": job.outcome.value, "job_id": job_id,
                "digest": digest, "error": job.error}, keep_alive)

        job_id = f"{artifact.bug_id}:{digest}"
        job = TriageJob(
            job_id=job_id, priority=priority,
            timeout_s=self.config.timeout_s,
            payload={"mode": "artifact", "artifact": artifact.render(),
                     "bug_id": artifact.bug_id, "digest": digest,
                     "tenant": tenant,
                     "wave_jobs": self.config.wave_jobs,
                     "policy": self.config.policy})
        if self.config.policy != "static" and self.experience:
            job.payload["experience"] = self.experience.snapshot()
        try:
            self.queue.push(job, tenant=tenant)
        except QueueFull:
            self.metrics.incr("shed_queue_full")
            self.tenants.note_shed(tenant)
            return protocol.json_response(429, {
                "error": "queue_full", "depth": self.queue.depth,
                "digest": digest}, keep_alive,)
        self._jobs[job_id] = job
        self._by_digest[digest] = job_id
        self._accepted_at[job_id] = time.monotonic()
        self.tenants.note_accepted(tenant)
        self.metrics.incr("accepted")
        self.metrics.observe_latency(
            "handle_seconds", time.perf_counter() - started)
        return protocol.json_response(202, {
            "status": "accepted", "job_id": job_id, "digest": digest},
            keep_alive)

    # -- status endpoints ----------------------------------------------
    def _job_status(self, job_id: str, keep_alive: bool) -> bytes:
        job = self._jobs.get(job_id)
        if job is None:
            return protocol.json_response(
                404, {"error": f"no job {job_id!r}"}, keep_alive)
        payload = {
            "job_id": job.job_id, "status": job.outcome.value,
            "digest": job.payload.get("digest", ""),
            "bug_id": job.payload.get("bug_id", ""),
            "tenant": job.payload.get("tenant", DEFAULT_TENANT),
            "priority": job.priority, "duplicates": len(job.duplicates),
            "attempts": job.attempts, "seconds": job.seconds,
            "error": job.error,
        }
        if job.outcome is JobOutcome.SUCCEEDED and job.result is not None:
            payload["result"] = job.result
        return protocol.json_response(200, payload, keep_alive)

    def _result(self, digest: str, keep_alive: bool) -> bytes:
        record, tier = self.store.lookup(digest)
        if record is not None:
            return protocol.json_response(200, {
                "digest": digest, "tier": tier, "result": record},
                keep_alive)
        job_id = self._by_digest.get(digest)
        if job_id is not None and not self._jobs[job_id].done:
            return protocol.json_response(202, {
                "status": "pending", "job_id": job_id, "digest": digest},
                keep_alive)
        return protocol.json_response(
            404, {"error": f"no result for {digest!r}"}, keep_alive)

    # -- the drain loop -------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Accepted but not yet terminal: queued + running."""
        return self.queue.depth + self._running

    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            if self.paused:
                await asyncio.sleep(self.config.poll_interval_s)
                continue
            batch = self.queue.pop_batch(self.config.batch_size)
            if not batch:
                await asyncio.sleep(self.config.poll_interval_s)
                continue
            now = time.monotonic()
            runnable = []
            for job in batch:
                self._running += 1
                accepted_at = self._accepted_at.pop(job.job_id, now)
                self.metrics.observe_latency("queue_wait_seconds",
                                             now - accepted_at)
                # Completed before a crash but never marked done in the
                # journal?  The store remembers; don't re-diagnose.
                record = self.store.get(job.payload.get("digest", ""))
                if record is not None:
                    job.outcome = JobOutcome.CACHE_HIT
                    job.result = record
                    self._finish(job)
                else:
                    runnable.append(job)
            if runnable:
                await loop.run_in_executor(
                    None, lambda jobs=runnable: self.pool.run(
                        jobs, on_complete=self._finish))

    def _finish(self, job: TriageJob) -> None:
        """Settle one terminal job (runs in the executor thread for
        pool jobs, the event loop for journal-replay cache hits)."""
        digest = job.payload.get("digest", "")
        if job.outcome is JobOutcome.SUCCEEDED:
            self.store.put(digest, job.result)
            record = (job.result or {}).get("experience")
            if record:
                # Persist what the diagnosis learned (own digest
                # namespace, reloaded at next boot) and fold it into the
                # live index for subsequent adaptive submissions.
                self.store.put(RECORD_DIGEST_PREFIX + digest, record)
                self.experience.absorb_record(record)
            self.metrics.incr("completed")
            self.metrics.observe_latency("diagnosis_seconds", job.seconds)
        elif job.outcome is JobOutcome.CACHE_HIT:
            self.metrics.incr("completed")
            self.metrics.incr("completed_from_store")
        elif job.outcome is JobOutcome.TIMED_OUT:
            self.metrics.incr("timed_out")
        else:
            self.metrics.incr("failed")
        self.queue.mark_done(job)
        self.tenants.note_done(job.payload.get("tenant", DEFAULT_TENANT))
        self._running -= 1

    # -- metrics --------------------------------------------------------
    def render_metrics(self) -> str:
        """The exposition text, fed by the observe tracer's counters."""
        counters = {name: value
                    for name, value in sorted(self.tracer.counters.items())
                    if name.startswith("daemon.")}
        store_stats = self.store.stats()
        gauges = {
            "daemon.queue_depth": self.queue.depth,
            "daemon.in_flight": self.in_flight,
            "daemon.hot_size": store_stats["hot_size"],
            "daemon.cold_size": store_stats["cold_size"],
            "daemon.hot_evictions": store_stats["hot_evictions"],
            "daemon.paused": 1 if self.paused else 0,
        }
        histograms = {f"daemon.{name}": hist
                      for name, hist in self.metrics.histograms.items()}
        text = render_exposition(counters, gauges, histograms)
        tenant_lines = []
        for tenant, counts in self.tenants.snapshot().items():
            for key, value in sorted(counts.items()):
                tenant_lines.append(
                    f'aitia_daemon_tenant_{key}{{tenant="{tenant}"}}'
                    f' {value}')
        if tenant_lines:
            text += "\n".join(tenant_lines) + "\n"
        return text

    # -- lifecycle ------------------------------------------------------
    def request_shutdown(self) -> None:
        """Signal-safe: flag the daemon down and wake the runner."""
        self._stopping = True
        self.shutdown_event.set()

    async def stop(self) -> None:
        """Graceful stop: close the listener, let the in-flight batch
        finish (bounded by ``shutdown_grace_s``), flush everything."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._drain_task is not None:
            try:
                await asyncio.wait_for(self._drain_task,
                                       self.config.shutdown_grace_s)
            except asyncio.TimeoutError:  # pragma: no cover — slow batch
                self._drain_task.cancel()
        self.pool.close()
        self.queue.close()
        self.store.close()
        if self._owns_tracer:
            self.tracer.close()
