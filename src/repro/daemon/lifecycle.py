"""Daemon configuration and process lifecycle.

:class:`DaemonConfig` is the one knob surface — the CLI (``repro
serve``), the api facade (:func:`repro.api.serve`) and the tests all
build one of these.  :func:`run_daemon` is the blocking entrypoint:
it boots a :class:`~repro.daemon.server.TriageDaemon`, installs
``SIGTERM``/``SIGINT`` handlers for a graceful stop (stop accepting,
finish the in-flight batch, flush the journal), and returns the exit
code.  A hard kill is also safe — that is what the queue journal is
for (:mod:`repro.daemon.queue`).

``--port 0`` binds an ephemeral port; ``port_file`` publishes the
actually-bound ``host:port`` for whoever started the daemon (the CI
smoke step and the crash-recovery test wait on that file).
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.service.queue import RetryPolicy
from repro.daemon.queue import DEFAULT_MAX_DEPTH, DEFAULT_QUEUE_SHARDS
from repro.daemon.server import TriageDaemon
from repro.daemon.tenants import TenantPolicy
from repro.daemon.tiers import DEFAULT_HOT_CAPACITY, DEFAULT_STORE_SHARDS
from repro.daemon import protocol


@dataclass
class DaemonConfig:
    """Everything ``repro serve`` can be told."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Data directory; the queue journal and the cold store shards live
    #: in ``queue/`` and ``store/`` under it.
    data_dir: str = "daemon-data"
    jobs: int = 1              #: worker processes for the drain pool
    wave_jobs: int = 1         #: per-diagnosis parallel wave width
    #: Search policy per diagnosis (``"static"`` / ``"adaptive"``); with
    #: ``"adaptive"`` the daemon boots its experience index from the
    #: cold store and ships a snapshot in every job payload.
    policy: str = "static"
    timeout_s: float = 300.0   #: per-job diagnosis timeout
    hot_capacity: int = DEFAULT_HOT_CAPACITY
    store_shards: int = DEFAULT_STORE_SHARDS
    queue_shards: int = DEFAULT_QUEUE_SHARDS
    max_depth: Optional[int] = DEFAULT_MAX_DEPTH
    batch_size: int = 4        #: jobs per drain batch
    poll_interval_s: float = 0.05
    shutdown_grace_s: float = 30.0
    max_body_bytes: int = protocol.MAX_BODY_BYTES
    tenant_policy: TenantPolicy = field(default_factory=TenantPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Accept-but-don't-drain mode (tests park work in the journal).
    paused: bool = False
    #: Worker entry: ``None`` (the real pipeline), a callable, or a
    #: ``"module:function"`` spec (see :mod:`repro.daemon.worker`).
    diagnoser: Union[None, str, Callable[[dict], dict]] = None
    #: Where to publish the actually-bound ``host:port``.
    port_file: Optional[str] = None
    #: An externally-owned observe tracer (``None``: the daemon makes
    #: its own, sink-less, for counter aggregation).
    tracer: Optional[object] = None

    @property
    def queue_dir(self) -> str:
        return os.path.join(self.data_dir, "queue")

    @property
    def store_dir(self) -> str:
        return os.path.join(self.data_dir, "store")


async def start_daemon(config: DaemonConfig) -> TriageDaemon:
    """Boot a daemon (listener + drain loop) and return it — the
    in-process entry tests and benchmarks drive directly."""
    daemon = TriageDaemon(config)
    await daemon.start()
    if config.port_file:
        tmp = config.port_file + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(f"{config.host}:{daemon.port}\n")
        os.replace(tmp, config.port_file)
    return daemon


async def run_async(config: DaemonConfig) -> int:
    daemon = await start_daemon(config)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, daemon.request_shutdown)
        except NotImplementedError:  # pragma: no cover — non-POSIX
            pass
    print(f"repro serve: listening on {config.host}:{daemon.port} "
          f"(data in {config.data_dir!r}, "
          f"{len(daemon.queue.recovered)} job(s) recovered"
          f"{', paused' if config.paused else ''})",
          file=sys.stderr, flush=True)
    await daemon.shutdown_event.wait()
    await daemon.stop()
    print("repro serve: drained and stopped cleanly",
          file=sys.stderr, flush=True)
    return 0


def run_daemon(config: DaemonConfig) -> int:
    """The blocking entrypoint behind ``repro serve``."""
    try:
        return asyncio.run(run_async(config))
    except KeyboardInterrupt:  # pragma: no cover — ^C before handlers
        return 0
