"""Minimal HTTP/1.1 over asyncio streams — the daemon's wire layer.

The intake daemon speaks plain HTTP/1.1 (keep-alive, Content-Length
bodies) directly over :func:`asyncio.start_server` streams; there is no
third-party web framework in the image and none is needed for four
routes.  This module owns the parsing and rendering so the server
module (:mod:`repro.daemon.server`) is pure routing and policy.

Deliberately small surface:

* request heads are bounded (:data:`MAX_HEADER_BYTES`) and bodies are
  bounded (:data:`MAX_BODY_BYTES`) — an internet-facing intake must
  not buffer an unbounded upload;
* only ``Content-Length`` bodies are accepted (``Transfer-Encoding``
  is answered with 501 — crash artifacts are small files, nobody
  needs chunking);
* malformed input raises :class:`ProtocolError` carrying the right
  status code; the connection handler turns it into a response and
  closes.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Bound on the request line + headers, and the ``start_server`` limit.
MAX_HEADER_BYTES = 32768
#: Bound on a request body (crash artifacts are a few KB).
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed or over-limit request; carries the response status."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str = ""
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


def _parse_head(head: bytes) -> Tuple[str, str, str, str, Dict[str, str]]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover — latin-1 total
        raise ProtocolError(400, "undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported version {version!r}")
    path, _, query = target.partition("?")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, query, version, headers


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = MAX_BODY_BYTES,
                       ) -> Optional[Request]:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any byte (client closed the
    keep-alive connection between requests); raises
    :class:`ProtocolError` on anything malformed or over-limit.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "request head exceeds "
                                 f"{MAX_HEADER_BYTES} bytes") from None
    method, path, query, version, headers = _parse_head(head[:-4])

    if "transfer-encoding" in headers:
        raise ProtocolError(501, "Transfer-Encoding is not supported; "
                                 "send a Content-Length body")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise ProtocolError(400,
                                f"bad Content-Length {raw_length!r}") from None
        if length > max_body:
            raise ProtocolError(413, f"body of {length} bytes exceeds "
                                     f"the {max_body} byte limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "truncated request body") from None
    return Request(method=method, path=path, query=query, version=version,
                   headers=headers, body=body)


def render_response(status: int, body: bytes = b"",
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    extra_headers: Optional[Dict[str, str]] = None,
                    ) -> bytes:
    """Serialize one response, Content-Length framed."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: dict,
                  keep_alive: bool = True) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, keep_alive=keep_alive)


def text_response(status: int, text: str, keep_alive: bool = True) -> bytes:
    return render_response(status, text.encode("utf-8"),
                           content_type="text/plain; version=0.0.4",
                           keep_alive=keep_alive)
