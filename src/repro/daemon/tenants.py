"""Per-tenant rate limits and quotas for the intake daemon.

Submissions carry an ``X-Tenant`` header (absent → the ``"anon"``
tenant).  Each tenant gets a token bucket (sustained rate + burst) and
two quotas: a bound on how many of its jobs may sit in the queue at
once, and an optional lifetime acceptance quota.  A submission that
fails any check is *shed* with a 429 before it costs anything — no
parse beyond the headers, no journal write, no queue slot.

The table is intentionally admission-control only: it never blocks,
it just answers "may this tenant submit right now?" and keeps the
per-tenant accounting the ``/metrics`` endpoint reports.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The tenant submissions without an ``X-Tenant`` header belong to.
DEFAULT_TENANT = "anon"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate <= 0`` disables rate limiting (the bucket always grants).
    ``now`` is injectable for deterministic tests.
    """

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = max(burst, 1.0)
        self.tokens = self.burst
        self._updated: Optional[float] = None

    def take(self, n: float = 1.0, now: Optional[float] = None) -> bool:
        if self.rate <= 0:
            return True
        if now is None:
            now = time.monotonic()
        if self._updated is not None:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass(frozen=True)
class TenantPolicy:
    """The admission policy every tenant starts from."""

    rate: float = 0.0          #: tokens/second (<= 0: unlimited)
    burst: float = 100.0       #: bucket capacity
    max_queued: Optional[int] = None    #: concurrent queued+running jobs
    max_accepted: Optional[int] = None  #: lifetime acceptance quota


@dataclass
class TenantState:
    """One tenant's bucket and accounting."""

    name: str
    bucket: TokenBucket
    accepted: int = 0
    shed: int = 0
    queued: int = 0  #: currently queued or running jobs
    completed: int = 0
    extra: dict = field(default_factory=dict)


class TenantTable:
    """get-or-create tenant states plus the admission decision."""

    def __init__(self, policy: Optional[TenantPolicy] = None) -> None:
        self.policy = policy or TenantPolicy()
        self._tenants: Dict[str, TenantState] = {}
        self._lock = threading.Lock()

    def state(self, name: str) -> TenantState:
        name = name or DEFAULT_TENANT
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = TenantState(
                    name=name,
                    bucket=TokenBucket(self.policy.rate, self.policy.burst))
                self._tenants[name] = state
            return state

    # -- admission ------------------------------------------------------
    def admit(self, name: str,
              now: Optional[float] = None) -> Tuple[bool, str]:
        """May this tenant submit right now?  ``(ok, shed_reason)``.

        The caller still owns queue-full shedding; this only enforces
        the per-tenant dimensions (rate, queued bound, lifetime quota).
        A denial is counted against the tenant's ``shed`` here.
        """
        state = self.state(name)
        policy = self.policy
        if (policy.max_accepted is not None
                and state.accepted >= policy.max_accepted):
            state.shed += 1
            return False, "quota_exceeded"
        if (policy.max_queued is not None
                and state.queued >= policy.max_queued):
            state.shed += 1
            return False, "tenant_queue_full"
        if not state.bucket.take(now=now):
            state.shed += 1
            return False, "rate_limited"
        return True, ""

    # -- accounting ----------------------------------------------------
    def note_accepted(self, name: str) -> None:
        state = self.state(name)
        state.accepted += 1
        state.queued += 1

    def note_shed(self, name: str) -> None:
        self.state(name).shed += 1

    def note_done(self, name: str) -> None:
        state = self.state(name)
        state.completed += 1
        state.queued = max(0, state.queued - 1)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {name: {"accepted": s.accepted, "shed": s.shed,
                           "queued": s.queued, "completed": s.completed}
                    for name, s in sorted(self._tenants.items())}
