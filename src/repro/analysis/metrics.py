"""Simulated time model for the evaluation tables.

The paper reports wall-clock seconds on a 2.5 GHz Xeon running 32 VMs with
an instrumented (KASAN) kernel.  Our substrate is a Python simulator, so
absolute times are meaningless; instead, each run is charged costs
calibrated to the paper's regime:

* a per-schedule setup cost (generating the schedule, installing
  breakpoints, restoring the snapshot) — dominates LIFS, whose runs mostly
  do not crash: Table 2 shows roughly 0.06–0.08 s per LIFS schedule;
* a per-instruction execution cost;
* a *reboot* cost charged when a run crashes the guest — dominates
  Causality Analysis, where most flips still fail (section 5.1 explains
  CA's longer times by exactly this); Table 2 works out to roughly
  1.5–2.5 s per CA schedule.

The resulting shape — CA slower than LIFS by the reboot factor, times in
the tens-of-seconds to tens-of-minutes range — is the property the
reproduction preserves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Charge rates, in simulated seconds."""

    schedule_setup_s: float = 0.05
    instruction_s: float = 1e-4
    snapshot_restore_s: float = 0.02
    reboot_s: float = 2.0

    def run_cost(self, steps: int, crashed: bool) -> float:
        cost = self.schedule_setup_s + steps * self.instruction_s
        cost += self.reboot_s if crashed else self.snapshot_restore_s
        return cost

    def stage_cost(self, schedules: int, total_steps: int,
                   crashes: int) -> "StageCost":
        ok_runs = max(schedules - crashes, 0)
        seconds = (
            schedules * self.schedule_setup_s
            + total_steps * self.instruction_s
            + crashes * self.reboot_s
            + ok_runs * self.snapshot_restore_s
        )
        return StageCost(schedules=schedules, crashes=crashes,
                         seconds=seconds)


@dataclass(frozen=True)
class StageCost:
    """Simulated cost of one stage (LIFS or Causality Analysis)."""

    schedules: int
    crashes: int
    seconds: float

    def parallel_seconds(self, vms: int) -> float:
        """Idealized wall time across a VM pool."""
        return self.seconds / max(vms, 1)
