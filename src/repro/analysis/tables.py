"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows of the paper table/figure it regenerates
through this renderer, so outputs are uniform and easy to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns")
        self.rows.append(values)

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(values: Sequence[str]) -> str:
        return " | ".join(v.ljust(widths[i]) for i, v in enumerate(values))

    sep = "-+-".join("-" * w for w in widths)
    out = [title, line(list(columns)), sep]
    out.extend(line(row) for row in cells)
    return "\n".join(out)
