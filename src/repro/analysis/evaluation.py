"""Whole-corpus evaluation: one call that reproduces the paper's numbers.

:func:`evaluate_corpus` runs the full diagnosis over a set of bugs and
returns a structured :class:`CorpusEvaluation` — the data behind Tables
2 and 3 and the section 5.2 statistics — with a JSON-safe export for
archiving results next to a checkout.  The benchmark harness prints the
same rows; this module is the programmatic interface.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.races import count_memory_instructions

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.corpus.spec import Bug


@dataclass
class BugEvaluation:
    """One bug's measured row."""

    bug_id: str
    subsystem: str
    bug_type: str
    source: str
    multi_variable: bool
    loosely_correlated: bool
    reproduced: bool
    interleavings: int = 0
    lifs_schedules: int = 0
    lifs_seconds: float = 0.0
    ca_schedules: int = 0
    ca_seconds: float = 0.0
    ca_reboots: int = 0
    memory_accesses: int = 0
    races_detected: int = 0
    races_in_chain: int = 0
    benign_excluded: int = 0
    ambiguous: bool = False
    chain: str = ""
    slices_tried: int = 0


@dataclass
class CorpusEvaluation:
    """All rows plus the aggregates the paper quotes."""

    rows: List[BugEvaluation] = field(default_factory=list)

    @property
    def reproduced_count(self) -> int:
        return sum(1 for r in self.rows if r.reproduced)

    @property
    def ambiguous_bugs(self) -> List[str]:
        return [r.bug_id for r in self.rows if r.ambiguous]

    def averages(self) -> Dict[str, float]:
        done = [r for r in self.rows if r.reproduced]
        if not done:
            return {"memory_accesses": 0.0, "races_detected": 0.0,
                    "races_in_chain": 0.0}
        n = len(done)
        return {
            "memory_accesses": sum(r.memory_accesses for r in done) / n,
            "races_detected": sum(r.races_detected for r in done) / n,
            "races_in_chain": sum(r.races_in_chain for r in done) / n,
        }

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "rows": [asdict(r) for r in self.rows],
            "aggregates": {
                "bugs": len(self.rows),
                "reproduced": self.reproduced_count,
                "ambiguous": self.ambiguous_bugs,
                **self.averages(),
            },
        }
        return json.dumps(payload, indent=indent)


def summarize_diagnosis(bug: "Bug", diagnosis) -> BugEvaluation:
    """Condense a :class:`~repro.core.diagnose.Diagnosis` into the
    evaluation row — shared by the sequential evaluation and the triage
    service's workers, so both report identical numbers."""
    row = BugEvaluation(
        bug_id=bug.bug_id, subsystem=bug.subsystem,
        bug_type=bug.bug_type.name, source=bug.source,
        multi_variable=bug.multi_variable,
        loosely_correlated=bug.loosely_correlated,
        reproduced=diagnosis.reproduced,
        slices_tried=diagnosis.slices_tried)
    if not diagnosis.reproduced:
        if diagnosis.lifs_result is not None:
            row.lifs_schedules = diagnosis.lifs_result.stats.schedules_executed
        return row

    failing = diagnosis.lifs_result.failure_run
    row.interleavings = diagnosis.interleaving_count
    row.lifs_schedules = diagnosis.lifs_schedules
    row.lifs_seconds = diagnosis.lifs_cost.seconds
    row.ca_schedules = diagnosis.ca_schedules
    row.ca_seconds = diagnosis.ca_cost.seconds
    row.ca_reboots = diagnosis.ca_result.stats.reboots
    row.memory_accesses = count_memory_instructions(failing.accesses)
    row.races_detected = len(diagnosis.lifs_result.races)
    row.races_in_chain = diagnosis.chain.race_count
    row.benign_excluded = diagnosis.ca_result.benign_race_count
    row.ambiguous = diagnosis.chain.has_ambiguity
    row.chain = diagnosis.chain.render()
    return row


def _evaluate_one(bug: "Bug", pipeline: bool = False,
                  snapshots: bool = True,
                  wave_jobs: int = 1,
                  executor: str = "fleet",
                  policy: str = "static",
                  experience=None,
                  tracer=None) -> BugEvaluation:
    """Diagnose one bug and summarize the outcome."""
    # Imported here: analysis is a leaf package for repro.core, so the
    # orchestrator import must not run at module-import time.
    from repro.core.causality import CaConfig
    from repro.core.diagnose import Aitia
    from repro.core.lifs import LifsConfig

    report = None
    if pipeline:
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug)
    diagnosis = Aitia(bug, report=report,
                      lifs_config=LifsConfig(use_snapshots=snapshots,
                                             wave_jobs=wave_jobs,
                                             executor=executor,
                                             policy=policy),
                      ca_config=CaConfig(use_snapshots=snapshots,
                                         wave_jobs=wave_jobs,
                                         executor=executor,
                                         policy=policy),
                      experience=experience,
                      tracer=tracer).diagnose()
    return summarize_diagnosis(bug, diagnosis)


def _evaluate_worker(payload: dict) -> dict:
    """Worker-process entry for the parallel evaluation: look the bug
    up by id (bugs themselves hold unpicklable factories) and return
    the row as a plain dict."""
    from repro.corpus import registry

    bug = registry.get_bug(payload["bug_id"])
    return asdict(_evaluate_one(bug, pipeline=payload["pipeline"],
                                snapshots=payload.get("snapshots", True),
                                wave_jobs=payload.get("wave_jobs", 1),
                                executor=payload.get("executor", "fleet"),
                                policy=payload.get("policy", "static")))


def evaluate_corpus(bugs: Optional[Sequence["Bug"]] = None,
                    pipeline: bool = False,
                    jobs: int = 1,
                    timeout_s: float = 600.0,
                    snapshots: bool = True,
                    wave_jobs: int = 1,
                    executor: str = "fleet",
                    policy: str = "static",
                    tracer=None) -> CorpusEvaluation:
    """Evaluate a bug set (default: the paper's 22 evaluated bugs).

    With ``jobs > 1`` the rows are computed by the triage service's
    worker pool — one process per bug, ``jobs`` at a time — and are
    bit-identical to the sequential rows (the simulator is
    deterministic).  A bug whose worker fails for any reason falls back
    to in-process evaluation, so the result is always complete.

    ``tracer`` records per-diagnosis spans in-process; with ``jobs >
    1`` the diagnoses happen in worker processes, so the trace carries
    the dispatch span and per-job points instead.

    ``snapshots=False`` disables the prefix-checkpoint engine (the
    ``--no-snapshot`` ablation); ``wave_jobs > 1`` fans each diagnosis's
    schedule waves out to child processes (``--parallel-waves``, inert
    inside ``jobs > 1`` workers, which are daemonic and cannot fork).
    ``policy="adaptive"`` routes both search stages through the adaptive
    search policy (``--policy``); the sequential path shares one
    experience index across the whole set, so each diagnosis learns
    from its predecessors, while parallel workers rank with empty
    priors.  Rows are bit-identical whatever the settings.
    """
    from repro.observe.tracer import as_tracer

    tracer = as_tracer(tracer)
    if bugs is None:
        from repro.corpus.registry import all_bugs
        bugs = all_bugs()
    if jobs <= 1:
        experience = None
        if policy != "static":
            from repro.policy import ExperienceIndex
            experience = ExperienceIndex()
        with tracer.span("evaluate", stage="evaluate",
                         bugs=len(bugs), jobs=1):
            return CorpusEvaluation(
                rows=[_evaluate_one(bug, pipeline=pipeline,
                                    snapshots=snapshots,
                                    wave_jobs=wave_jobs,
                                    executor=executor, policy=policy,
                                    experience=experience, tracer=tracer)
                      for bug in bugs])

    from repro.engine.executors import make_executor
    from repro.service.queue import JobOutcome, TriageJob

    triage_jobs = [
        TriageJob(job_id=bug.bug_id,
                  payload={"bug_id": bug.bug_id, "pipeline": pipeline,
                           "snapshots": snapshots, "wave_jobs": wave_jobs,
                           "executor": executor, "policy": policy},
                  timeout_s=timeout_s)
        for bug in bugs
    ]
    with tracer.span("evaluate", stage="evaluate",
                     bugs=len(bugs), jobs=jobs) as span:
        pool = make_executor(worker=_evaluate_worker, jobs=jobs)
        try:
            pool.run(triage_jobs)
        finally:
            pool.close()
        rows = []
        fallbacks = 0
        for bug, job in zip(bugs, triage_jobs):
            if tracer.enabled:
                tracer.point("evaluate.job", stage="evaluate",
                             bug=bug.bug_id, outcome=job.outcome.value,
                             seconds=round(job.seconds, 6),
                             queue_wait_s=round(job.queue_wait_s, 6))
                tracer.count(f"evaluate.jobs_{job.outcome.value}")
            if job.outcome is JobOutcome.SUCCEEDED:
                rows.append(BugEvaluation(**job.result))
            else:  # pragma: no cover — worker-loss fallback
                fallbacks += 1
                rows.append(_evaluate_one(bug, pipeline=pipeline,
                                          snapshots=snapshots,
                                          wave_jobs=wave_jobs,
                                          executor=executor,
                                          policy=policy))
        span.set(fallbacks=fallbacks)
    return CorpusEvaluation(rows=rows)
