"""Scoring diagnosers against the three requirements (Table 1).

Verdicts per tool:

* **Comprehensive** — mechanical: on what fraction of bugs did the tool's
  output cover every race of the causality chain?  ``YES`` >= 90%,
  ``PARTIAL`` in between ("conditionally satisfied only when the root
  cause meets the tool's assumptions", the paper's triangle), ``NO``
  <= 10%.
* **Pattern-agnostic** — structural, backed by category evidence: a tool
  that relies on predefined patterns or object-correlation assumptions
  (``uses_predefined_patterns``) is ``NO``; the benchmark prints the
  per-category diagnosis rates (single-variable / multi-variable /
  loosely-correlated) that demonstrate which bug classes each assumption
  excludes.
* **Concise** — mechanical: of the bugs diagnosed, on what fraction was
  the output free of benign races?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.baselines.base import BaselineReport
    from repro.corpus.spec import Bug


class Verdict(enum.Enum):
    YES = "yes"
    PARTIAL = "partial"
    NO = "no"

    @property
    def symbol(self) -> str:
        return {"yes": "v", "partial": "^", "no": "-"}[self.value]


def _grade(hits: int, total: int) -> Verdict:
    if total == 0:
        return Verdict.NO
    ratio = hits / total
    if ratio >= 0.85:
        return Verdict.YES
    if ratio > 0.1:
        return Verdict.PARTIAL
    return Verdict.NO


def bug_category(bug: "Bug") -> str:
    if bug.loosely_correlated:
        return "loosely-correlated"
    if bug.multi_variable:
        return "multi-variable"
    return "single-variable"


@dataclass
class RequirementRow:
    """One tool's Table 1 row, plus the per-category evidence."""

    tool: str
    comprehensive: Verdict
    pattern_agnostic: Verdict
    concise: Verdict
    bugs_diagnosed: int
    bugs_total: int
    category_diagnosed: Dict[str, str] = field(default_factory=dict)

    def cells(self) -> List[str]:
        return [self.tool, self.comprehensive.symbol,
                self.pattern_agnostic.symbol, self.concise.symbol,
                f"{self.bugs_diagnosed}/{self.bugs_total}"]

    def evidence(self) -> str:
        per_cat = ", ".join(f"{cat}: {rate}"
                            for cat, rate in sorted(
                                self.category_diagnosed.items()))
        return f"{self.tool}: diagnosed per category — {per_cat}"


def score_tool(tool, bugs: Sequence["Bug"],
               reports: Sequence["BaselineReport"]) -> RequirementRow:
    """Aggregate one baseline's per-bug reports into its Table 1 row."""
    total = len(reports)
    diagnosed = sum(1 for r in reports if r.diagnosed)
    comprehensive = sum(1 for r in reports if r.comprehensive)
    concise = sum(1 for r in reports if r.diagnosed and r.concise)

    by_category: Dict[str, List["BaselineReport"]] = {}
    for bug, report in zip(bugs, reports):
        by_category.setdefault(bug_category(bug), []).append(report)
    category_rates = {
        cat: f"{sum(1 for r in rs if r.diagnosed)}/{len(rs)}"
        for cat, rs in by_category.items()
    }

    if tool.uses_predefined_patterns:
        pattern_agnostic = Verdict.NO
    else:
        pattern_agnostic = _grade(diagnosed, total)

    return RequirementRow(
        tool=tool.name,
        comprehensive=_grade(comprehensive, total),
        pattern_agnostic=pattern_agnostic,
        concise=_grade(concise, max(diagnosed, 1)),
        bugs_diagnosed=diagnosed,
        bugs_total=total,
        category_diagnosed=category_rates,
    )


def aitia_row(bugs: Sequence["Bug"], diagnoses) -> RequirementRow:
    """AITIA's own row, scored by the same criteria: every chain covers
    itself (comprehensive), every bug is diagnosed without pattern
    assumptions (pattern-agnostic), and chains contain no benign race
    (concise — verified against the races Causality Analysis excluded)."""
    total = len(diagnoses)
    diagnosed = sum(1 for d in diagnoses if d.reproduced)
    concise = 0
    for d in diagnoses:
        if not d.reproduced:
            continue
        chain_races = {r.key for r in d.chain.races}
        benign = {
            r.key for unit in d.ca_result.benign_units for r in unit.races}
        if not (chain_races & benign):
            concise += 1

    by_category: Dict[str, List] = {}
    for bug, d in zip(bugs, diagnoses):
        by_category.setdefault(bug_category(bug), []).append(d)
    category_rates = {
        cat: f"{sum(1 for d in ds if d.reproduced)}/{len(ds)}"
        for cat, ds in by_category.items()
    }
    return RequirementRow(
        tool="AITIA",
        comprehensive=_grade(diagnosed, total),
        pattern_agnostic=_grade(diagnosed, total),
        concise=_grade(concise, max(diagnosed, 1)),
        bugs_diagnosed=diagnosed,
        bugs_total=total,
        category_diagnosed=category_rates,
    )
