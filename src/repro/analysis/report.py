"""Developer-facing diagnosis reports.

Turns a :class:`~repro.core.diagnose.Diagnosis` into the artifact AITIA
would hand a kernel developer: the failure, the causality chain with the
code around every racing instruction, the actionable fix guidance the
paper emphasizes ("if a fix disallows any one order in the chain, the
failure cannot occur"), and the triage summary of what was tested and
excluded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.races import DataRace
from repro.kernel.program import KernelImage

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.diagnose import Diagnosis


def _code_context(image: KernelImage, label: str,
                  radius: int = 1) -> List[str]:
    """The instruction with up to ``radius`` neighbours on each side."""
    try:
        instr = image.instruction_labeled(label)
    except KeyError:
        return [f"    <no instruction labeled {label!r}>"]
    func = image.functions[instr.func]
    lines = []
    lo = max(instr.index - radius, 0)
    hi = min(instr.index + radius + 1, len(func.instructions))
    for i in range(lo, hi):
        neighbour = func.instructions[i]
        marker = ">>" if i == instr.index else "  "
        lines.append(f"    {marker} {instr.func}: {neighbour!r}")
    return lines


def _race_section(image: KernelImage, index: int, race: DataRace,
                  ambiguous: bool) -> List[str]:
    lines = [f"  race {index}: {race.first.instr_label} "
             f"({race.first.thread}) => {race.second.instr_label} "
             f"({race.second.thread})"
             + ("  [AMBIGUOUS — see §3.4]" if ambiguous else "")]
    lines.extend(_code_context(image, race.first.instr_label))
    lines.append("    -- races with --")
    lines.extend(_code_context(image, race.second.instr_label))
    lines.append(
        f"    fix option: make sure "
        f"{race.second.instr_label} cannot execute after "
        f"{race.first.instr_label} without synchronization "
        f"(flip {race.flipped_str()} averts the failure)")
    return lines


def render_report(diagnosis: "Diagnosis",
                  image: Optional[KernelImage] = None) -> str:
    """A complete text report for one diagnosed bug."""
    header = f"AITIA root-cause report — {diagnosis.bug_id}"
    lines = [header, "=" * len(header), ""]
    if not diagnosis.reproduced:
        lines.append("The reported failure could NOT be reproduced from "
                     "the given slices; no diagnosis is available.")
        if diagnosis.lifs_result is not None:
            lines.append(
                f"(LIFS explored "
                f"{diagnosis.lifs_result.stats.schedules_executed} "
                f"schedules across {diagnosis.slices_tried} slice(s).)")
        return "\n".join(lines)

    failure = diagnosis.lifs_result.failure_run.failure
    lines += [
        f"failure:   {failure}",
        f"chain:     {diagnosis.chain.render()}",
        "",
        "The chain reads left to right: each interleaving order steers "
        "the control flow",
        "that makes the next one possible, and the final order triggers "
        "the failure.",
        "Disallowing ANY ONE of the orders below prevents the failure.",
        "",
    ]

    counter = 0
    for node in diagnosis.chain.nodes:
        if node.is_conjunction:
            lines.append("  -- multi-variable conjunction: the following "
                         "races must be prevented together --")
        for race in node.races:
            counter += 1
            if image is not None:
                lines.extend(_race_section(image, counter, race,
                                           node.ambiguous))
            else:
                lines.append(f"  race {counter}: {race}"
                             + (" [AMBIGUOUS]" if node.ambiguous else ""))
            lines.append("")

    ca = diagnosis.ca_result
    lines += [
        "triage summary:",
        f"  data races tested:    {len(diagnosis.lifs_result.races)}",
        f"  benign (excluded):    {ca.benign_race_count}",
        f"  in the causality chain: {diagnosis.chain.race_count}",
        f"  LIFS: {diagnosis.lifs_schedules} schedules, "
        f"{diagnosis.interleaving_count} interleaving(s)"
        + (f", {diagnosis.lifs_cost.seconds:.1f}s simulated"
           if diagnosis.lifs_cost else ""),
        f"  Causality Analysis: {diagnosis.ca_schedules} schedules, "
        f"{ca.stats.reboots} VM reboots"
        + (f", {diagnosis.ca_cost.seconds:.1f}s simulated"
           if diagnosis.ca_cost else ""),
    ]
    if diagnosis.chain.has_ambiguity:
        lines.append(
            "  note: a surrounding race could not be flipped in "
            "isolation; its contribution is reported as ambiguous.")
    return "\n".join(lines)
