"""Evaluation support: cost model, table renderers, requirement scoring,
whole-corpus evaluation and developer reports."""

from repro.analysis.evaluation import (
    BugEvaluation,
    CorpusEvaluation,
    evaluate_corpus,
)
from repro.analysis.metrics import CostModel, StageCost
from repro.analysis.report import render_report
from repro.analysis.requirements import RequirementRow, Verdict, score_tool
from repro.analysis.tables import Table, render_table

__all__ = [
    "BugEvaluation",
    "CorpusEvaluation",
    "CostModel",
    "RequirementRow",
    "StageCost",
    "Table",
    "Verdict",
    "evaluate_corpus",
    "render_report",
    "render_table",
    "score_tool",
]
