"""The triage orchestrator: intake → dedup → diagnose → cache.

:class:`TriageService` is the syzbot-style loop above the AITIA
pipeline.  Crash reports enter either as serialized artifacts (an
intake directory a fuzzing fleet drops files into) or straight from the
corpus; each is fingerprinted (:mod:`repro.service.signature`), folded
into an existing job when the signature repeats, answered from the
result store when the signature was ever diagnosed before, and
otherwise dispatched to the worker pool.  Completed diagnoses are
persisted keyed by signature digest, so the service's steady state is
cache hits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.service.artifacts import (
    ArtifactParseError,
    CrashArtifact,
    scan_directory,
)
from repro.engine.executors import make_executor
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobOutcome, JobQueue, RetryPolicy, TriageJob
from repro.service.signature import CrashSignature, signature_of
from repro.service.store import ResultStore

DEFAULT_JOB_TIMEOUT_S = 300.0


#: The one empty-intake behaviour: zero crash reports is "nothing to
#: do", not an error.  The batch verb prints this and exits 0; the
#: daemon reports it when asked to drain an empty queue.
EMPTY_INTAKE_MESSAGE = "triage: no crash reports to process (nothing to do)"


def diagnose_job(payload: dict) -> dict:
    """Worker entry: rebuild the crash and run the full diagnosis.

    Shared by the batch triage service and the ``repro serve`` daemon
    (:mod:`repro.daemon.worker`).  Must stay a module-level function
    (worker processes may need to pickle it under the ``spawn`` start
    method).  Returns plain dicts — everything crossing the process
    boundary is JSON-shaped, which is also exactly what the result
    store persists.
    """
    from repro.analysis.evaluation import summarize_diagnosis
    from repro.core.causality import CaConfig
    from repro.core.diagnose import Aitia
    from repro.core.lifs import LifsConfig
    from repro.corpus import registry

    bug = registry.get_bug(payload["bug_id"])
    mode = payload["mode"]
    if mode == "artifact":
        report = CrashArtifact.parse(payload["artifact"]).to_report()
    elif mode == "pipeline":
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug)
    elif mode == "direct":
        report = None
    else:
        raise ValueError(f"unknown triage mode {mode!r}")
    from repro.engine import EnginePolicy
    from repro.policy import ExperienceIndex

    policy = EnginePolicy.resolve(wave_jobs=payload.get("wave_jobs"),
                                  executor=payload.get("executor"),
                                  search_policy=payload.get("policy"))
    experience = None
    if policy.search_policy != "static":
        # Rebuild the submitter's experience index from the payload
        # snapshot (empty priors otherwise) — the adaptive policy ranks
        # candidates against it inside this worker.
        experience = ExperienceIndex.from_snapshot(payload.get("experience"))
    diagnosis = Aitia(
        bug, report=report,
        lifs_config=LifsConfig(wave_jobs=policy.wave_jobs,
                               executor=policy.executor,
                               policy=policy.search_policy),
        ca_config=CaConfig(wave_jobs=policy.wave_jobs,
                           executor=policy.executor,
                           policy=policy.search_policy),
        experience=experience).diagnose()
    row = summarize_diagnosis(bug, diagnosis)
    result = {"bug_id": bug.bug_id, "mode": mode, "row": asdict(row)}
    if diagnosis.reproduced:
        # What this diagnosis learned, for the submitter to persist and
        # absorb — future adaptive searches rank by it.
        result["experience"] = ExperienceIndex.record_of(bug.bug_id,
                                                         diagnosis)
    return result


@dataclass
class TriageResult:
    """One signature's triage outcome (duplicates folded in)."""

    bug_id: str
    digest: str
    outcome: str  #: :class:`JobOutcome` value
    duplicates: int = 0
    attempts: int = 0
    seconds: float = 0.0
    reproduced: Optional[bool] = None
    chain: str = ""
    lifs_schedules: int = 0
    ca_schedules: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in (JobOutcome.SUCCEEDED.value,
                                JobOutcome.CACHE_HIT.value)


@dataclass
class TriageSummary:
    """Everything one triage run did, renderable and archivable."""

    results: List[TriageResult] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def count(self, outcome: JobOutcome) -> int:
        return sum(1 for r in self.results if r.outcome == outcome.value)

    @property
    def empty(self) -> bool:
        """No reports reached the run — the "nothing to do" case."""
        return not self.results

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        from repro.analysis.tables import Table

        table = Table("crash triage",
                      ["bug", "signature", "outcome", "dups", "repro",
                       "LIFS #", "CA #", "secs", "chain"])
        for r in self.results:
            repro = "-" if r.reproduced is None else (
                "yes" if r.reproduced else "NO")
            table.add_row(r.bug_id, r.digest, r.outcome, r.duplicates,
                          repro, r.lifs_schedules, r.ca_schedules,
                          f"{r.seconds:.2f}", r.chain or r.error)
        counts = ", ".join(
            f"{self.count(o)} {o.value}" for o in (
                JobOutcome.SUCCEEDED, JobOutcome.CACHE_HIT,
                JobOutcome.FAILED, JobOutcome.TIMED_OUT))
        return f"{table.render()}\n\ntotals: {counts}"

    def to_json(self, indent: int = 2) -> str:
        return json.dumps({"results": [asdict(r) for r in self.results],
                           "metrics": self.metrics}, indent=indent)


class TriageService:
    """Ingests crash reports, diagnoses each unique signature once."""

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 retry: Optional[RetryPolicy] = None,
                 timeout_s: float = DEFAULT_JOB_TIMEOUT_S,
                 context: Optional[str] = None,
                 wave_jobs: int = 1,
                 executor: str = "fleet",
                 policy: str = "static",
                 tracer=None) -> None:
        from repro.observe.tracer import as_tracer
        from repro.policy import ExperienceIndex

        self.jobs = jobs
        #: Per-diagnosis parallel wave width, forwarded to every worker's
        #: LIFS/CA configs.  Waves degrade to inline execution inside
        #: ``jobs > 1`` workers (daemonic processes may not fork).
        self.wave_jobs = wave_jobs
        #: Wave dispatch backend for each diagnosis (``"fleet"`` /
        #: ``"inline"``), forwarded alongside ``wave_jobs``.
        self.executor = executor
        #: Search policy for each diagnosis (``"static"`` /
        #: ``"adaptive"``), forwarded in every job payload.
        self.policy = policy
        self.store = store if store is not None else ResultStore()
        #: The service-side experience index: seeded from the result
        #: store's persisted experience records, grown live as jobs
        #: complete, snapshotted into adaptive job payloads.
        self.experience = ExperienceIndex()
        if policy != "static":
            self.experience.load(self.store)
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if self.tracer.enabled:
            self.metrics.bind_tracer(self.tracer)
        self.retry = retry or RetryPolicy()
        self.timeout_s = timeout_s
        self._context = context
        self._queue = JobQueue()
        self._by_digest: dict = {}
        self._order: List[TriageJob] = []

    # -- intake ---------------------------------------------------------
    def _submit(self, bug_id: str, signature: CrashSignature,
                payload: dict, source: str, priority: int) -> TriageJob:
        self.metrics.incr("reports_submitted")
        digest = signature.digest
        existing = self._by_digest.get(digest)
        if existing is not None:
            existing.duplicates.append(source)
            self.metrics.incr("reports_deduped")
            return existing
        payload = dict(payload, bug_id=bug_id, digest=digest,
                       wave_jobs=self.wave_jobs, executor=self.executor,
                       policy=self.policy)
        if self.policy != "static" and self.experience:
            payload["experience"] = self.experience.snapshot()
        job = TriageJob(job_id=f"{bug_id}:{digest}", payload=payload,
                        priority=priority, timeout_s=self.timeout_s)
        self._by_digest[digest] = job
        self._order.append(job)
        cached = self.store.get(digest)
        if cached is not None:
            job.outcome = JobOutcome.CACHE_HIT
            job.result = cached
            self.metrics.incr("cache_hits")
        else:
            self._queue.push(job)
            self.metrics.incr("jobs_enqueued")
        return job

    def submit_artifact(self, artifact: CrashArtifact,
                        source: str = "", priority: int = 0) -> TriageJob:
        """Ingest one serialized crash artifact."""
        with self.metrics.timer("intake"):
            signature = signature_of(artifact.to_report().crash)
        return self._submit(
            artifact.bug_id, signature,
            {"mode": "artifact", "artifact": artifact.render()},
            source or artifact.bug_id, priority)

    def submit_bug(self, bug, pipeline: bool = False,
                   priority: int = 0) -> TriageJob:
        """Ingest a corpus workload: the synthetic bug finder crashes it
        once (cheap — a single schedule) to obtain the crash report the
        signature is computed from; the diagnosis itself runs in the
        worker."""
        from repro.trace.syzkaller import run_bug_finder

        with self.metrics.timer("intake"):
            report = run_bug_finder(bug, benign_probes=0)
            signature = signature_of(report.crash)
        mode = "pipeline" if pipeline else "direct"
        return self._submit(bug.bug_id, signature, {"mode": mode},
                            bug.bug_id, priority)

    def intake_directory(self, path: str) -> List[TriageJob]:
        """Ingest every ``*.crash`` artifact in a directory; malformed
        files are counted and skipped, never fatal."""
        jobs = []
        for artifact_path in scan_directory(path):
            try:
                artifact = CrashArtifact.read(artifact_path)
            except (ArtifactParseError, OSError):
                self.metrics.incr("intake_errors")
                continue
            jobs.append(self.submit_artifact(artifact,
                                             source=artifact_path))
        return jobs

    # -- execution ------------------------------------------------------
    def run(self) -> TriageSummary:
        """Diagnose every pending unique signature and summarize."""
        pending = self._queue.drain()
        with self.tracer.span("triage.run", stage="triage",
                              jobs=self.jobs, unique=len(self._order),
                              dispatched=len(pending)) as span:
            if pending:
                executor = make_executor(
                    worker=diagnose_job, jobs=self.jobs,
                    retry=self.retry, context=self._context)
                try:
                    with self.metrics.timer("dispatch"):
                        executor.run(pending, on_complete=self._on_complete)
                finally:
                    executor.close()
            summary = TriageSummary(metrics=self.metrics.snapshot())
            for job in self._order:
                summary.results.append(self._result_of(job))
            span.set(cache_hits=self.metrics.count("cache_hits"),
                     succeeded=self.metrics.count("jobs_succeeded"),
                     failed=self.metrics.count("jobs_failed"))
        return summary

    def _on_complete(self, job: TriageJob) -> None:
        self.metrics.incr(f"jobs_{job.outcome.value}")
        if job.attempts > 1:
            self.metrics.incr("jobs_retried", job.attempts - 1)
        self.metrics.observe("queue_wait", job.queue_wait_s)
        if job.outcome is JobOutcome.SUCCEEDED:
            with self.metrics.timer("persist"):
                self.store.put(job.payload["digest"], job.result)
                record = (job.result or {}).get("experience")
                if record:
                    from repro.policy import RECORD_DIGEST_PREFIX
                    self.store.put(
                        RECORD_DIGEST_PREFIX + job.payload["digest"], record)
                    self.experience.absorb_record(record)

    @staticmethod
    def _result_of(job: TriageJob) -> TriageResult:
        result = TriageResult(
            bug_id=job.payload["bug_id"], digest=job.payload["digest"],
            outcome=job.outcome.value, duplicates=len(job.duplicates),
            attempts=job.attempts, seconds=job.seconds, error=job.error)
        row = (job.result or {}).get("row")
        if row:
            result.reproduced = row.get("reproduced")
            result.chain = row.get("chain", "")
            result.lifs_schedules = row.get("lifs_schedules", 0)
            result.ca_schedules = row.get("ca_schedules", 0)
        return result
