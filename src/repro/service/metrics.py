"""Counters and stage timings for the triage service.

A tiny in-process metrics layer (the shape of a Prometheus client,
minus the wire format): monotonically increasing counters for job flow
(submitted / deduped / cached / dispatched / succeeded / failed /
timed out / retried) and accumulated wall-clock timings per pipeline
stage (intake, dedup, dispatch, persist).  The triage summary embeds a
snapshot so every run reports what the service actually did.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List


class ServiceMetrics:
    """Counter + timing registry; cheap enough to always be on."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self._timings: Dict[str, List[float]] = {}

    # -- counters -------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timings --------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        self._timings.setdefault(stage, []).append(seconds)

    @contextmanager
    def timer(self, stage: str):
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(stage, time.monotonic() - start)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        timings = {
            stage: {
                "count": len(samples),
                "total_s": sum(samples),
                "mean_s": sum(samples) / len(samples),
                "max_s": max(samples),
            }
            for stage, samples in self._timings.items() if samples
        }
        return {"counters": dict(self.counters), "timings": timings}

    def render(self) -> str:
        lines = ["service metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]}")
        for stage in sorted(self._timings):
            samples = self._timings[stage]
            if not samples:
                continue
            lines.append(
                f"  {stage + '_seconds':<24} total={sum(samples):.3f} "
                f"mean={sum(samples) / len(samples):.3f} "
                f"max={max(samples):.3f} n={len(samples)}")
        return "\n".join(lines)
