"""Counters and stage timings for the triage service.

A tiny in-process metrics layer (the shape of a Prometheus client,
minus the wire format): monotonically increasing counters for job flow
(submitted / deduped / cached / dispatched / succeeded / failed /
timed out / retried) and accumulated wall-clock timings per pipeline
stage (intake, dedup, dispatch, persist).  The triage summary embeds a
snapshot so every run reports what the service actually did.

When a :mod:`repro.observe` tracer is bound (:meth:`bind_tracer`),
every counter increment is mirrored into the tracer's aggregate
counters under a ``triage.`` prefix and every timing sample becomes a
``triage.<stage>`` point event, so a traced triage run tells one story
with the rest of the pipeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List

from repro.observe.tracer import as_tracer


class ServiceMetrics:
    """Counter + timing registry; cheap enough to always be on."""

    def __init__(self, tracer=None) -> None:
        self.counters: Dict[str, int] = {}
        self._timings: Dict[str, List[float]] = {}
        self._tracer = as_tracer(tracer)

    def bind_tracer(self, tracer) -> None:
        """Mirror subsequent counters/timings into ``tracer`` too."""
        self._tracer = as_tracer(tracer)

    # -- counters -------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        self._tracer.count(f"triage.{name}", n)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timings --------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        self._timings.setdefault(stage, []).append(seconds)
        if self._tracer.enabled:
            self._tracer.point(f"triage.{stage}", stage="triage",
                               seconds=round(seconds, 6))

    @contextmanager
    def timer(self, stage: str):
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(stage, time.monotonic() - start)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        timings = {
            stage: {
                "count": len(samples),
                "total_s": sum(samples),
                "mean_s": sum(samples) / len(samples),
                "max_s": max(samples),
            }
            for stage, samples in self._timings.items() if samples
        }
        return {"counters": dict(self.counters), "timings": timings}

    def render(self) -> str:
        lines = ["service metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]}")
        for stage in sorted(self._timings):
            samples = self._timings[stage]
            if not samples:
                continue
            lines.append(
                f"  {stage + '_seconds':<24} total={sum(samples):.3f} "
                f"mean={sum(samples) / len(samples):.3f} "
                f"max={max(samples):.3f} n={len(samples)}")
        return "\n".join(lines)
