"""Counters and stage timings for the triage service.

A tiny in-process metrics layer (the shape of a Prometheus client,
minus the wire format): monotonically increasing counters for job flow
(submitted / deduped / cached / dispatched / succeeded / failed /
timed out / retried) and accumulated wall-clock timings per pipeline
stage (intake, dedup, dispatch, persist).  The triage summary embeds a
snapshot so every run reports what the service actually did.

When a :mod:`repro.observe` tracer is bound (:meth:`bind_tracer`),
every counter increment is mirrored into the tracer's aggregate
counters under a ``triage.`` prefix and every timing sample becomes a
``triage.<stage>`` point event, so a traced triage run tells one story
with the rest of the pipeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List

from repro.observe.tracer import as_tracer


class Histogram:
    """Fixed-bucket latency histogram (seconds), Prometheus-shaped.

    Cumulative bucket counts plus sum/count for the exposition format,
    and the raw samples for exact quantiles (the daemon's load
    benchmark asserts on them; sample retention is bounded by
    ``max_samples`` so a long-running daemon cannot grow without
    bound — quantiles then describe the most recent window).
    """

    #: Sub-millisecond resolution at the fast end (cache hits are
    #: measured in microseconds), seconds at the slow end (diagnoses).
    DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                       0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                       5.0, 10.0)

    def __init__(self, buckets=None, max_samples: int = 100_000) -> None:
        self.buckets = tuple(buckets or self.DEFAULT_BUCKETS)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.max_samples = max_samples
        self._samples: List[float] = []

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.sum += seconds
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        if len(self._samples) >= self.max_samples:
            del self._samples[:self.max_samples // 2]
        self._samples.append(seconds)

    def quantile(self, q: float) -> float:
        """Exact quantile over the retained samples (0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def snapshot(self) -> dict:
        return {"count": self.count, "sum_s": self.sum,
                "p50_s": self.quantile(0.50),
                "p99_s": self.quantile(0.99)}


class ServiceMetrics:
    """Counter + timing registry; cheap enough to always be on.

    ``prefix`` is the namespace counters/timings are mirrored into the
    bound tracer under (``triage.`` for the batch service, ``daemon.``
    for the intake daemon).
    """

    def __init__(self, tracer=None, prefix: str = "triage") -> None:
        self.counters: Dict[str, int] = {}
        self._timings: Dict[str, List[float]] = {}
        self._tracer = as_tracer(tracer)
        self.prefix = prefix

    def bind_tracer(self, tracer) -> None:
        """Mirror subsequent counters/timings into ``tracer`` too."""
        self._tracer = as_tracer(tracer)

    # -- counters -------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        self._tracer.count(f"{self.prefix}.{name}", n)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timings --------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        self._timings.setdefault(stage, []).append(seconds)
        if self._tracer.enabled:
            self._tracer.point(f"{self.prefix}.{stage}", stage=self.prefix,
                               seconds=round(seconds, 6))

    @contextmanager
    def timer(self, stage: str):
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(stage, time.monotonic() - start)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        timings = {
            stage: {
                "count": len(samples),
                "total_s": sum(samples),
                "mean_s": sum(samples) / len(samples),
                "max_s": max(samples),
            }
            for stage, samples in self._timings.items() if samples
        }
        return {"counters": dict(self.counters), "timings": timings}

    def render(self) -> str:
        lines = ["service metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]}")
        for stage in sorted(self._timings):
            samples = self._timings[stage]
            if not samples:
                continue
            lines.append(
                f"  {stage + '_seconds':<24} total={sum(samples):.3f} "
                f"mean={sum(samples) / len(samples):.3f} "
                f"max={max(samples):.3f} n={len(samples)}")
        return "\n".join(lines)
