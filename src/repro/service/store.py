"""The content-addressed result store.

Completed diagnoses are persisted as JSONL, one record per line, keyed
by the crash-signature digest.  A re-submitted report whose signature is
already present returns the cached causality chain without re-running
LIFS or Causality Analysis — the property that lets the triage service
absorb repeat traffic.

The file is append-only (crash-safe: a torn final line is skipped on
load and overwritten by the next append); on re-put of an existing
digest the *last* record wins, so refreshing a diagnosis is just another
append.  With ``path=None`` the store is memory-only, for tests and
one-shot runs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional


class ResultStore:
    """Persistent digest → diagnosis-record cache."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._records: Dict[str, dict] = {}
        #: Lines that failed to parse on load (torn writes, corruption).
        self.skipped_lines = 0
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    digest = entry["digest"]
                    record = entry["record"]
                except (ValueError, KeyError, TypeError):
                    self.skipped_lines += 1
                    continue
                self._records[digest] = record

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[dict]:
        return self._records.get(digest)

    def put(self, digest: str, record: dict) -> None:
        self._records[digest] = record
        if self.path is not None:
            line = json.dumps({"digest": digest, "record": record},
                              sort_keys=True)
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.path, "ab+") as fh:
                # A torn final line (crash mid-append) must not bleed
                # into this record: start a fresh line if the file
                # doesn't end with one.
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
                fh.write(line.encode("utf-8") + b"\n")

    def __contains__(self, digest: str) -> bool:
        return digest in self._records

    def __len__(self) -> int:
        return len(self._records)

    def digests(self) -> Iterator[str]:
        return iter(self._records)

    def compact(self) -> None:
        """Rewrite the file with one line per digest (drops superseded
        records left behind by append-on-update)."""
        if self.path is None:
            return
        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            for digest, record in self._records.items():
                fh.write(json.dumps({"digest": digest, "record": record},
                                    sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def __repr__(self) -> str:
        where = self.path or "<memory>"
        return f"<ResultStore {where}: {len(self)} record(s)>"
