"""The content-addressed result store.

Completed diagnoses are persisted as JSONL, one record per line, keyed
by the crash-signature digest.  A re-submitted report whose signature is
already present returns the cached causality chain without re-running
LIFS or Causality Analysis — the property that lets the triage service
absorb repeat traffic.

The file is append-only (crash-safe: a torn final line is skipped on
load and overwritten by the next append); on re-put of an existing
digest the *last* record wins, so refreshing a diagnosis is just another
append.  With ``path=None`` the store is memory-only, for tests and
one-shot runs.

File-backed stores do **not** hold records in memory.  Opening the
store scans the file exactly once and builds a digest → (byte offset,
length) index; a ``get`` seeks straight to its line and parses only
that record, and an append extends the index without re-reading
anything.  This is what makes the store usable as the *cold tier* of
the daemon's two-tier cache (:mod:`repro.daemon.tiers`): the hot LRU
tier absorbs repeats, and a cold lookup costs one seek + one line, not
a file scan.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional, Tuple


class ResultStore:
    """Persistent digest → diagnosis-record cache (offset-indexed)."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        #: Memory-only records (``path=None`` stores nothing on disk).
        self._records: Dict[str, dict] = {}
        #: File-backed index: digest -> (byte offset, byte length) of the
        #: latest record's line.  Built once at open, updated on append.
        self._index: Dict[str, Tuple[int, int]] = {}
        self._reader = None
        #: Lines that failed to parse on load (torn writes, corruption).
        self.skipped_lines = 0
        if path is not None and os.path.exists(path):
            self._build_index(path)

    # -- the offset index ----------------------------------------------
    def _build_index(self, path: str) -> None:
        """One sequential scan recording where every record lives."""
        offset = 0
        with open(path, "rb") as fh:
            for raw in fh:
                length = len(raw)
                line = raw.strip()
                if line:
                    try:
                        entry = json.loads(line.decode("utf-8"))
                        digest = entry["digest"]
                        entry["record"]
                    except (ValueError, KeyError, TypeError,
                            UnicodeDecodeError):
                        self.skipped_lines += 1
                    else:
                        self._index[digest] = (offset, length)
                offset += length

    def _read_at(self, offset: int, length: int) -> dict:
        if self._reader is None:
            self._reader = open(self.path, "rb")
        self._reader.seek(offset)
        raw = self._reader.read(length)
        return json.loads(raw.decode("utf-8"))["record"]

    def _drop_reader(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[dict]:
        if self.path is None:
            return self._records.get(digest)
        where = self._index.get(digest)
        if where is None:
            return None
        return self._read_at(*where)

    def put(self, digest: str, record: dict) -> None:
        if self.path is None:
            self._records[digest] = record
            return
        line = json.dumps({"digest": digest, "record": record},
                          sort_keys=True)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        data = line.encode("utf-8") + b"\n"
        with open(self.path, "ab+") as fh:
            # A torn final line (crash mid-append) must not bleed
            # into this record: start a fresh line if the file
            # doesn't end with one.
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            offset = fh.tell()
            fh.write(data)
        self._index[digest] = (offset, len(data))

    def __contains__(self, digest: str) -> bool:
        if self.path is None:
            return digest in self._records
        return digest in self._index

    def __len__(self) -> int:
        if self.path is None:
            return len(self._records)
        return len(self._index)

    def digests(self) -> Iterator[str]:
        if self.path is None:
            return iter(self._records)
        return iter(self._index)

    def records(self) -> Iterator[Tuple[str, dict]]:
        """Iterate ``(digest, record)`` pairs, latest record per digest.

        File-backed stores reuse the offset index — one seek + one line
        parse per record, never a full-file rescan — so bulk consumers
        (the experience-index loader, reporting) pay the same per-record
        cost as :meth:`get`.  Records are yielded in index order
        (insertion order of first appearance); mutating the store while
        iterating is undefined."""
        if self.path is None:
            for digest, record in self._records.items():
                yield digest, record
            return
        for digest, where in self._index.items():
            yield digest, self._read_at(*where)

    def compact(self) -> None:
        """Rewrite the file with one line per digest (drops superseded
        records left behind by append-on-update) and rebuild the index."""
        if self.path is None:
            return
        tmp = self.path + ".tmp"
        new_index: Dict[str, Tuple[int, int]] = {}
        offset = 0
        with open(tmp, "wb") as fh:
            for digest in list(self._index):
                record = self.get(digest)
                data = json.dumps({"digest": digest, "record": record},
                                  sort_keys=True).encode("utf-8") + b"\n"
                fh.write(data)
                new_index[digest] = (offset, len(data))
                offset += len(data)
        self._drop_reader()
        os.replace(tmp, self.path)
        self._index = new_index

    def close(self) -> None:
        """Release the read handle (the store stays usable; the next
        ``get`` reopens it)."""
        self._drop_reader()

    def __repr__(self) -> str:
        where = self.path or "<memory>"
        return f"<ResultStore {where}: {len(self)} record(s)>"
