"""Job model of the triage service.

A :class:`TriageJob` is one unit of diagnosis work: a picklable payload
(what the worker needs to rebuild and diagnose the crash), a priority, a
timeout, and the retry budget that governs what happens when the worker
process servicing it dies.  :class:`JobQueue` orders pending jobs by
priority (lower value first), FIFO within a priority.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class JobOutcome(enum.Enum):
    """Terminal (and transient) states of a triage job."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    CACHE_HIT = "cache_hit"

    @property
    def is_terminal(self) -> bool:
        return self not in (JobOutcome.PENDING, JobOutcome.RUNNING)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff on worker death.

    Timeouts are *not* retried — a job that blew its deadline once will
    blow it again on a deterministic simulator; it is reported as
    ``timed_out`` and the pool moves on.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_s * (self.backoff_factor ** max(attempt - 1, 0))


@dataclass
class TriageJob:
    """One diagnosis job flowing through the service."""

    job_id: str
    payload: dict
    priority: int = 0
    timeout_s: float = 60.0
    attempts: int = 0
    outcome: JobOutcome = JobOutcome.PENDING
    result: Optional[dict] = None
    error: str = ""
    #: Wall-clock seconds spent diagnosing (0 for cache hits).
    seconds: float = 0.0
    #: Seconds the job waited in the pool before its first attempt
    #: launched (0 for cache hits, which never reach the pool).
    queue_wait_s: float = 0.0
    #: Ids of duplicate submissions folded into this job by signature
    #: dedup — they all share this job's result.
    duplicates: List[str] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.outcome.is_terminal


class QueueFull(Exception):
    """Push rejected: the queue is at its bounded depth.

    The backpressure signal of the triage daemon — callers shed the
    submission (HTTP 429) instead of letting the queue grow without
    bound.  Nothing is journaled or enqueued for a rejected push.
    """


class JobQueue:
    """Priority queue of pending jobs (stable within a priority).

    ``max_depth`` bounds the number of *pending* jobs; a push past the
    bound raises :class:`QueueFull` (``None`` means unbounded, the
    batch verb's behaviour).
    """

    def __init__(self, max_depth: Optional[int] = None) -> None:
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._by_id: Dict[str, TriageJob] = {}
        self.max_depth = max_depth

    @property
    def full(self) -> bool:
        return (self.max_depth is not None
                and len(self._heap) >= self.max_depth)

    def push(self, job: TriageJob) -> None:
        if job.job_id in self._by_id:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        if self.full:
            raise QueueFull(
                f"queue at bounded depth {self.max_depth}")
        self._by_id[job.job_id] = job
        heapq.heappush(self._heap, (job.priority, next(self._seq), job))

    def pop(self) -> TriageJob:
        if not self._heap:
            raise IndexError("pop from empty job queue")
        _, _, job = heapq.heappop(self._heap)
        return job

    def drain(self) -> List[TriageJob]:
        """Pop everything, in priority order."""
        jobs = []
        while self._heap:
            jobs.append(self.pop())
        return jobs

    def get(self, job_id: str) -> Optional[TriageJob]:
        return self._by_id.get(job_id)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
