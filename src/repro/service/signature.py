"""Crash signatures: "is this the same crash?" for the triage service.

syzbot groups incoming kernel crashes by a *crash signature* so that the
same bug reported a thousand times is diagnosed once.  Ours is built
from the three stable parts of a crash report (the pieces AITIA consumes
from a coredump, section 4.2):

* the failure kind (``KASAN: use-after-free``, GPF, ...);
* the faulting-instruction location (``instr_label``);
* a digest of the normalized call-trace frames.

Frames are normalized to ``func+label`` — the reporting process name is
dropped, so the same race crashing under different pids still dedupes,
exactly like syzbot's frame-based titles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from repro.kernel.failures import CrashReport

#: Length of the hex digests (64 bits — plenty for a corpus of crashes,
#: short enough to read in a table).
DIGEST_HEX_CHARS = 16


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:DIGEST_HEX_CHARS]


def call_trace_frames(kernel_log: str) -> List[str]:
    """Extract normalized ``func+label`` frames from kernel-log text.

    Frames are the indented lines following ``Call trace:``; each is
    ``PROC: func+label`` as rendered by the synthetic bug finder.  The
    process name is stripped.  A log without a ``Call trace:`` section
    yields no frames — the signature then rests on kind + location.
    """
    frames: List[str] = []
    in_trace = False
    for line in (kernel_log or "").splitlines():
        stripped = line.strip()
        if stripped == "Call trace:":
            in_trace = True
            continue
        if not in_trace:
            continue
        if not stripped or not line.startswith((" ", "\t")):
            break  # end of the indented trace block
        _, sep, frame = stripped.partition(": ")
        frames.append(frame if sep else stripped)
    return frames


@dataclass(frozen=True)
class CrashSignature:
    """A stable fingerprint of one crash symptom."""

    kind: str  #: :class:`~repro.kernel.failures.FailureKind` name
    location: str  #: faulting-instruction label (may be empty)
    trace_digest: str  #: digest of the normalized call-trace frames

    @property
    def digest(self) -> str:
        """The content-address used as the result-store key."""
        return _sha(f"{self.kind}|{self.location}|{self.trace_digest}")

    def describe(self) -> str:
        where = self.location or "?"
        return f"{self.kind}@{where}#{self.digest}"


def signature_of(report: CrashReport) -> CrashSignature:
    """Fingerprint a structured crash report."""
    frames = call_trace_frames(report.kernel_log)
    return CrashSignature(
        kind=report.failure.kind.name,
        location=report.failure.instr_label,
        trace_digest=_sha("\n".join(frames)))


def signature_of_text(crash_text: str) -> CrashSignature:
    """Fingerprint serialized crash-report text (parses it first)."""
    from repro.trace.crash import parse_crash_report

    return signature_of(parse_crash_report(crash_text))


def shard_index(digest: str, shards: int) -> int:
    """Stable shard assignment by signature-digest prefix.

    The daemon's cold store and work-queue journal are both sharded by
    this function, so a digest always lands in the same shard file
    across restarts.  Digests are hex (:func:`_sha`); anything else is
    re-hashed first so the function totals over arbitrary keys.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    prefix = digest[:4]
    try:
        value = int(prefix, 16)
    except ValueError:
        value = int(_sha(digest)[:4], 16)
    return value % shards
