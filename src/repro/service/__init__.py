"""The crash-triage service: AITIA as a syzbot-style pipeline.

The paper's manager parallelizes reproducing/diagnosing across 32 VMs
(section 4.5); this package is the layer above that turns the diagnosis
algorithm into a *service*: report intake, signature-based dedup, a job
queue with retry/timeout policy, a ``multiprocessing``-backed worker
pool (the simulator is deterministic pure Python, so independent bugs
genuinely parallelize across processes), and a content-addressed result
store so a re-submitted crash returns its cached causality chain without
re-running LIFS or Causality Analysis.

Modules:

* :mod:`repro.service.signature` — crash fingerprinting;
* :mod:`repro.service.artifacts` — the serialized intake format
  (crash-report text + ftrace history text in one file);
* :mod:`repro.service.store` — persistent JSONL result cache;
* :mod:`repro.service.queue` — job model, priorities, retry policy;
* :mod:`repro.service.pool` — process pool + in-process fallback;
* :mod:`repro.service.metrics` — counters and per-stage timings;
* :mod:`repro.service.triage` — the orchestrator and CLI backend.
"""

from repro.service.artifacts import ArtifactParseError, CrashArtifact
from repro.service.metrics import Histogram, ServiceMetrics
from repro.service.pool import InProcessPool, WorkerPool, make_pool
from repro.service.queue import (
    JobOutcome,
    QueueFull,
    RetryPolicy,
    TriageJob,
)
from repro.service.signature import CrashSignature, shard_index, signature_of
from repro.service.store import ResultStore
from repro.service.triage import (
    EMPTY_INTAKE_MESSAGE,
    TriageService,
    TriageSummary,
    diagnose_job,
)

__all__ = [
    "ArtifactParseError",
    "CrashArtifact",
    "CrashSignature",
    "EMPTY_INTAKE_MESSAGE",
    "Histogram",
    "InProcessPool",
    "JobOutcome",
    "QueueFull",
    "ResultStore",
    "RetryPolicy",
    "ServiceMetrics",
    "TriageJob",
    "TriageService",
    "TriageSummary",
    "WorkerPool",
    "diagnose_job",
    "make_pool",
    "shard_index",
    "signature_of",
]
