"""The serialized intake format of the triage service.

A *crash artifact* is what a fuzzing fleet drops into the intake
directory when a kernel crashes: one text file bundling the two archival
formats that already exist — the crash report
(:mod:`repro.trace.crash`) and the ftrace-style execution history
(:mod:`repro.trace.ftrace`) — plus the workload id naming which corpus
image the history executes against (standing in for the kernel
build/commit a real report would carry)::

    # aitia-crash-artifact v1
    # bug: SYZ-04
    # == crash ==
    BUG: KASAN: use-after-free in kworker at K1: ...
    Call trace:
      ...
    # == ftrace ==
    # tracer: aitia
    ...

``CrashArtifact`` round-trips through :meth:`render` / :meth:`parse`,
and :meth:`to_report` rebuilds the
:class:`~repro.trace.syzkaller.SyzkallerReport` AITIA consumes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List

HEADER = "# aitia-crash-artifact v1"
_BUG_PREFIX = "# bug: "
_CRASH_MARK = "# == crash =="
_FTRACE_MARK = "# == ftrace =="

#: File extension the intake scanner looks for.
EXTENSION = ".crash"


class ArtifactParseError(ValueError):
    """Malformed crash-artifact text."""


@dataclass(frozen=True)
class CrashArtifact:
    """One serialized crash: workload id + crash text + history text."""

    bug_id: str
    crash_text: str
    ftrace_text: str

    # -- construction ---------------------------------------------------
    @classmethod
    def from_report(cls, report) -> "CrashArtifact":
        """Serialize a :class:`~repro.trace.syzkaller.SyzkallerReport`."""
        from repro.trace.crash import render_crash_report
        from repro.trace.ftrace import render_ftrace

        return cls(bug_id=report.bug_id,
                   crash_text=render_crash_report(report.crash),
                   ftrace_text=render_ftrace(report.history))

    @classmethod
    def parse(cls, text: str) -> "CrashArtifact":
        lines = text.splitlines()
        if not lines or lines[0].strip() != HEADER:
            raise ArtifactParseError("missing artifact header")
        if len(lines) < 2 or not lines[1].startswith(_BUG_PREFIX):
            raise ArtifactParseError("missing '# bug:' line")
        bug_id = lines[1][len(_BUG_PREFIX):].strip()
        if not bug_id:
            raise ArtifactParseError("empty bug id")
        try:
            crash_at = lines.index(_CRASH_MARK)
            ftrace_at = lines.index(_FTRACE_MARK)
        except ValueError as exc:
            raise ArtifactParseError(
                "missing crash/ftrace section marker") from exc
        if ftrace_at < crash_at:
            raise ArtifactParseError("sections out of order")
        crash_text = "\n".join(lines[crash_at + 1:ftrace_at]).strip("\n")
        ftrace_text = "\n".join(lines[ftrace_at + 1:]).strip("\n")
        if not crash_text:
            raise ArtifactParseError("empty crash section")
        return cls(bug_id=bug_id, crash_text=crash_text,
                   ftrace_text=ftrace_text)

    # -- serialization --------------------------------------------------
    def render(self) -> str:
        return "\n".join([HEADER, f"{_BUG_PREFIX}{self.bug_id}",
                          _CRASH_MARK, self.crash_text,
                          _FTRACE_MARK, self.ftrace_text])

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.render() + "\n")

    @classmethod
    def read(cls, path: str) -> "CrashArtifact":
        with open(path) as fh:
            return cls.parse(fh.read())

    # -- reconstruction -------------------------------------------------
    def to_report(self):
        """Rebuild the bug-finder report AITIA's pipeline consumes."""
        from repro.trace.crash import parse_crash_report
        from repro.trace.ftrace import parse_ftrace
        from repro.trace.syzkaller import SyzkallerReport

        return SyzkallerReport(bug_id=self.bug_id,
                               history=parse_ftrace(self.ftrace_text),
                               crash=parse_crash_report(self.crash_text))


def scan_directory(path: str) -> List[str]:
    """Paths of all ``*.crash`` artifacts under ``path`` (sorted)."""
    return sorted(
        os.path.join(path, name) for name in os.listdir(path)
        if name.endswith(EXTENSION)
        and os.path.isfile(os.path.join(path, name)))


def emit_artifact(bug, directory: str) -> str:
    """Run the synthetic bug finder on ``bug`` and drop its artifact into
    ``directory`` — how demo/test intake directories are populated."""
    from repro.trace.syzkaller import run_bug_finder

    artifact = CrashArtifact.from_report(run_bug_finder(bug))
    path = os.path.join(directory, f"{bug.bug_id}{EXTENSION}")
    artifact.write(path)
    return path
