"""Worker pools: real process parallelism for independent diagnoses.

The simulator is deterministic pure Python, so diagnosing independent
bugs in separate *processes* gives genuine wall-clock speedup (threads
would serialize on the GIL).  :class:`WorkerPool` runs each job attempt
in its own child process, capped at ``jobs`` concurrent children — the
process-per-attempt design makes fault handling exact:

* **timeout** — a child past its job's deadline is terminated and the
  job reported ``timed_out``; nothing else in the pool is disturbed;
* **worker death** — a child that exits without posting a result (OOM
  kill, segfault, ``SIGKILL``) is detected by its exit code and the job
  is retried with backoff, up to the policy's budget;
* **worker exception** — deterministic failures are not retried; the
  job is reported ``failed`` with the exception text.

:class:`InProcessPool` is the ``--jobs 1`` fallback: same interface, no
child processes (and therefore no timeout enforcement — a deterministic
simulator cannot hang mid-schedule), which keeps single-job runs easy
to debug and profile.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, List, Optional, Sequence

from repro.service.queue import JobOutcome, RetryPolicy, TriageJob

Worker = Callable[[dict], dict]


def _attempt_main(worker: Worker, payload: dict, conn) -> None:
    """Child-process entry: run the worker, post the result, exit."""
    try:
        result = worker(payload)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 — report, don't crash silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _Attempt:
    """One running child process servicing one job."""

    def __init__(self, ctx, worker: Worker, job: TriageJob) -> None:
        self.job = job
        self.recv, send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(target=_attempt_main,
                                   args=(worker, job.payload, send),
                                   daemon=True)
        self.started = time.monotonic()
        self.process.start()
        send.close()  # parent keeps only the read end
        self.message: Optional[tuple] = None

    def poll_message(self) -> None:
        """Drain the pipe eagerly so a large result can't wedge the
        child in a blocking send."""
        if self.message is None:
            try:
                if self.recv.poll():
                    self.message = self.recv.recv()
            except (EOFError, OSError):
                pass

    @property
    def timed_out(self) -> bool:
        return (self.message is None
                and time.monotonic() - self.started > self.job.timeout_s)

    @property
    def exited(self) -> bool:
        return self.process.exitcode is not None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():  # pragma: no cover — stubborn child
                self.process.kill()
                self.process.join(timeout=1.0)
        self.recv.close()

    def finish(self) -> None:
        self.process.join(timeout=1.0)
        self.recv.close()


class WorkerPool:
    """Run triage jobs across child processes with retry/timeout."""

    def __init__(self, worker: Worker, jobs: int = 2,
                 retry: Optional[RetryPolicy] = None,
                 context: Optional[str] = None,
                 poll_interval_s: float = 0.01) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.worker = worker
        self.jobs = jobs
        self.retry = retry or RetryPolicy()
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(context)
        self.poll_interval_s = poll_interval_s

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[TriageJob],
            on_complete: Optional[Callable[[TriageJob], None]] = None,
            ) -> List[TriageJob]:
        """Execute every job to a terminal outcome; returns the same
        objects, mutated in place (order preserved)."""
        run_started = time.monotonic()
        pending: List[tuple] = [(0.0, job) for job in jobs
                                if not job.done]  # (not_before, job)
        active: List[_Attempt] = []
        try:
            while pending or active:
                now = time.monotonic()
                # Launch while slots are free and a job is eligible.
                while len(active) < self.jobs:
                    idx = next((i for i, (nb, _) in enumerate(pending)
                                if nb <= now), None)
                    if idx is None:
                        break
                    _, job = pending.pop(idx)
                    job.outcome = JobOutcome.RUNNING
                    job.attempts += 1
                    if job.attempts == 1:
                        job.queue_wait_s = time.monotonic() - run_started
                    active.append(_Attempt(self._ctx, self.worker, job))

                still_active: List[_Attempt] = []
                for attempt in active:
                    attempt.poll_message()
                    state = self._reap(attempt, pending)
                    if state == "running":
                        still_active.append(attempt)
                    elif state == "terminal" and on_complete is not None:
                        on_complete(attempt.job)
                active = still_active
                if pending or active:
                    time.sleep(self.poll_interval_s)
        finally:
            for attempt in active:  # pragma: no cover — only on error paths
                attempt.kill()
        return list(jobs)

    # ------------------------------------------------------------------
    def _reap(self, attempt: _Attempt, pending: List[tuple]) -> str:
        """Settle one attempt; returns ``"running"``, ``"terminal"``, or
        ``"requeued"`` (attempt done, job pending a retry)."""
        job = attempt.job
        if attempt.timed_out:
            # A result posted between the caller's poll and the deadline
            # check would be discarded by the kill below and the job
            # misreported as timed out — drain the pipe once more before
            # declaring the timeout (timed_out re-checks the message).
            attempt.poll_message()
        if attempt.timed_out:
            attempt.kill()
            job.outcome = JobOutcome.TIMED_OUT
            job.error = f"exceeded {job.timeout_s:.1f}s timeout"
            job.seconds += time.monotonic() - attempt.started
            return "terminal"
        if attempt.message is not None:
            status, body = attempt.message
            job.seconds += time.monotonic() - attempt.started
            if status == "ok":
                job.outcome = JobOutcome.SUCCEEDED
                job.result = body
            else:
                job.outcome = JobOutcome.FAILED
                job.error = body
            attempt.finish()
            return "terminal"
        if attempt.exited:
            # Died without a result: a killed/crashed worker, not a
            # deterministic failure — retry with backoff.
            job.seconds += time.monotonic() - attempt.started
            exitcode = attempt.process.exitcode
            attempt.finish()
            if job.attempts <= self.retry.max_retries:
                delay = self.retry.delay(job.attempts)
                job.outcome = JobOutcome.PENDING
                pending.append((time.monotonic() + delay, job))
                return "requeued"
            job.outcome = JobOutcome.FAILED
            job.error = (f"worker died (exit {exitcode}) "
                         f"after {job.attempts} attempt(s)")
            return "terminal"
        return "running"


class InProcessPool:
    """Serial fallback (``--jobs 1``): same interface, no processes.

    Takes no :class:`RetryPolicy`: the policy only governs worker-death
    retries, and an in-process worker cannot die without taking the
    whole pool with it — passing one here would silently promise retry
    behaviour that can never trigger, so the parameter is rejected
    loudly (``TypeError``) instead of accepted and ignored.
    """

    def __init__(self, worker: Worker) -> None:
        self.worker = worker

    def run(self, jobs: Sequence[TriageJob],
            on_complete: Optional[Callable[[TriageJob], None]] = None,
            ) -> List[TriageJob]:
        run_started = time.monotonic()
        for job in jobs:
            if job.done:
                continue
            job.outcome = JobOutcome.RUNNING
            job.attempts += 1
            start = time.monotonic()
            job.queue_wait_s = start - run_started
            try:
                job.result = self.worker(job.payload)
                job.outcome = JobOutcome.SUCCEEDED
            except KeyboardInterrupt:
                raise  # the user's ^C, not the job's failure
            except BaseException as exc:  # noqa: BLE001 — same contract as
                # _attempt_main: SystemExit and friends are reported as a
                # failed job, exactly like a child process would report.
                job.outcome = JobOutcome.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
            job.seconds += time.monotonic() - start
            if on_complete is not None:
                on_complete(job)
        return list(jobs)


def make_pool(worker: Worker, jobs: int = 1,
              retry: Optional[RetryPolicy] = None,
              context: Optional[str] = None):
    """The right pool for a parallelism level: processes when ``jobs >
    1``, in-process execution otherwise.  ``retry`` only applies to the
    process pool — worker death is the one condition it governs, and it
    cannot occur in-process."""
    if jobs <= 1:
        return InProcessPool(worker)
    return WorkerPool(worker, jobs=jobs, retry=retry, context=context)
