"""Worker pools (deprecated shims) and the in-process fallback.

Process dispatch for triage jobs lives in
:mod:`repro.engine.executors` since the executor redesign: one front
door, :func:`repro.engine.executors.make_executor`, builds either a
persistent fork-server :class:`~repro.engine.executors.JobExecutor`
(``jobs > 1``) or the :class:`InProcessPool` here (``jobs = 1``).

This module keeps:

* :class:`InProcessPool` — the serial placement of the job-executor
  contract, still canonical (it is what ``make_executor(worker=...,
  jobs=1)`` returns);
* :class:`WorkerPool` and :func:`make_pool` — **deprecated** shims over
  the fleet-backed executor, kept one release with migration notes in
  their docstrings.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, List, Optional, Sequence

from repro.service.queue import JobOutcome, RetryPolicy, TriageJob

Worker = Callable[[dict], dict]


class InProcessPool:
    """Serial fallback (``--jobs 1``): the job-executor contract, no
    processes.

    Takes no :class:`RetryPolicy`: the policy only governs worker-death
    retries, and an in-process worker cannot die without taking the
    whole pool with it — passing one here would silently promise retry
    behaviour that can never trigger, so the parameter is rejected
    loudly (``TypeError``) instead of accepted and ignored.
    """

    name = "in-process"
    parallel = False

    def __init__(self, worker: Worker) -> None:
        self.worker = worker

    def run(self, jobs: Sequence[TriageJob],
            on_complete: Optional[Callable[[TriageJob], None]] = None,
            ) -> List[TriageJob]:
        run_started = time.monotonic()
        for job in jobs:
            if job.done:
                continue
            job.outcome = JobOutcome.RUNNING
            job.attempts += 1
            start = time.monotonic()
            job.queue_wait_s = start - run_started
            try:
                job.result = self.worker(job.payload)
                job.outcome = JobOutcome.SUCCEEDED
            except KeyboardInterrupt:
                raise  # the user's ^C, not the job's failure
            except BaseException as exc:  # noqa: BLE001 — same contract as
                # a child worker: SystemExit and friends are reported as
                # a failed job, exactly like a worker process would.
                job.outcome = JobOutcome.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
            job.seconds += time.monotonic() - start
            if on_complete is not None:
                on_complete(job)
        return list(jobs)

    def close(self) -> None:
        """No resident workers to retire; present so every job executor
        shares one lifecycle contract."""


class WorkerPool:
    """**Deprecated** — use :func:`repro.engine.executors.make_executor`.

    The historical process-per-attempt pool.  This shim keeps the
    constructor and ``run(jobs, on_complete)`` contract alive for one
    release on top of the persistent fork-server fleet
    (:class:`~repro.engine.executors.JobExecutor`): same per-job
    timeout, worker-death retry with backoff and deterministic-failure
    reporting, but workers fork once and stay resident instead of
    forking per attempt.  Migration::

        # before
        pool = WorkerPool(worker, jobs=4, retry=policy)
        pool.run(jobs, on_complete=cb)

        # after
        from repro.engine.executors import make_executor
        executor = make_executor(worker=worker, jobs=4, retry=policy)
        executor.run(jobs, on_complete=cb)
        executor.close()   # retire the resident workers
    """

    def __init__(self, worker: Worker, jobs: int = 2,
                 retry: Optional[RetryPolicy] = None,
                 context: Optional[str] = None,
                 poll_interval_s: float = 0.01) -> None:
        warnings.warn(
            "repro.service.pool.WorkerPool is deprecated; build job "
            "executors with repro.engine.executors.make_executor("
            "worker=..., jobs=...) — see the class docstring for the "
            "migration recipe",
            DeprecationWarning, stacklevel=2)
        from repro.engine.executors import JobExecutor

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.worker = worker
        self.jobs = jobs
        self.retry = retry or RetryPolicy()
        # The historical pool forked a process per attempt regardless of
        # width, so the shim always builds the process-backed executor
        # (never the in-process fallback), even at jobs=1.
        self._executor = JobExecutor(worker, jobs=jobs, retry=self.retry,
                                     context=context)

    def run(self, jobs: Sequence[TriageJob],
            on_complete: Optional[Callable[[TriageJob], None]] = None,
            ) -> List[TriageJob]:
        """Execute every job to a terminal outcome; returns the same
        objects, mutated in place (order preserved)."""
        return self._executor.run(jobs, on_complete=on_complete)

    def close(self) -> None:
        self._executor.close()


def make_pool(worker: Worker, jobs: int = 1,
              retry: Optional[RetryPolicy] = None,
              context: Optional[str] = None):
    """**Deprecated** — call
    :func:`repro.engine.executors.make_executor` with ``worker=``
    instead; it is the same selection logic (processes when ``jobs >
    1``, in-process execution otherwise) behind the unified dispatch
    front door, and its process pool is the resident fork-server fleet.
    """
    warnings.warn(
        "repro.service.pool.make_pool is deprecated; use "
        "repro.engine.executors.make_executor(worker=..., jobs=...)",
        DeprecationWarning, stacklevel=2)
    from repro.engine.executors import make_executor

    return make_executor(worker=worker, jobs=jobs, retry=retry,
                         context=context)
