"""Prometheus-style text exposition of observe counters.

The daemon's ``GET /metrics`` endpoint (:mod:`repro.daemon.server`)
is fed by the same :class:`~repro.observe.tracer.Tracer` aggregate
counters every other layer reports through — this module is the thin
renderer that turns those counters (plus gauges and histograms) into
the ``text/plain; version=0.0.4`` exposition format a scraper expects::

    # TYPE aitia_daemon_submissions_total counter
    aitia_daemon_submissions_total 123
    # TYPE aitia_daemon_handle_seconds histogram
    aitia_daemon_handle_seconds_bucket{le="0.001"} 120
    ...

Metric names are sanitized (``daemon.cache_hits`` →
``aitia_daemon_cache_hits``); counters get a ``_total`` suffix per the
convention.  No third-party client library is involved — the format is
plain text and the counters already exist.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Optional

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, namespace: str = "aitia") -> str:
    """A valid exposition metric name for a dotted counter name."""
    flat = _SANITIZE.sub("_", name.strip("._"))
    return f"{namespace}_{flat}" if namespace else flat


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_exposition(counters: Mapping[str, int],
                      gauges: Optional[Mapping[str, float]] = None,
                      histograms: Optional[Mapping[str, object]] = None,
                      namespace: str = "aitia") -> str:
    """Render counters/gauges/histograms as exposition text.

    ``histograms`` maps names to
    :class:`repro.service.metrics.Histogram` instances (anything with
    ``buckets``, ``bucket_counts``, ``sum`` and ``count`` works).
    Counter names get ``_total`` appended; everything is emitted in
    sorted order so the output is stable for tests and diffs.
    """
    lines = []
    for name in sorted(counters):
        flat = metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(counters[name])}")
    for name in sorted(gauges or {}):
        flat = metric_name(name, namespace)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(gauges[name])}")
    for name in sorted(histograms or {}):
        hist = histograms[name]
        flat = metric_name(name, namespace)
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.bucket_counts):
            cumulative += count
            lines.append(f'{flat}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{flat}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{flat}_sum {_format_value(hist.sum)}")
        lines.append(f"{flat}_count {hist.count}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text back into a flat name → value mapping
    (labels kept verbatim in the key) — the test-side inverse of
    :func:`render_exposition`."""
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values
