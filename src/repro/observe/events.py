"""The trace event schema.

Every sink receives the same flat, JSON-safe :class:`TraceEvent` record;
the JSONL file a traced run writes is one ``TraceEvent.to_json()`` dict
per line.  Four kinds exist:

* ``span_start`` / ``span_end`` — a named region of work.  Spans nest:
  ``parent_id`` points at the enclosing span (0 = root), and the end
  event carries the duration plus every attribute set during the span.
* ``point`` — an instantaneous annotation (e.g. one LIFS depth's
  schedule accounting).
* ``counters`` — the tracer's aggregated counter totals, emitted once
  when the tracer is closed; ``attrs`` is the name → total mapping.

The ``stage`` field groups events by pipeline stage (``slice`` /
``lifs`` / ``ca`` / ``chain`` / ``triage`` / ...) so reports can
summarize per stage without knowing individual span names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Schema version stamped into every serialized event.
SCHEMA_VERSION = 1

SPAN_START = "span_start"
SPAN_END = "span_end"
POINT = "point"
COUNTERS = "counters"


@dataclass(frozen=True)
class TraceEvent:
    """One observability record."""

    kind: str
    name: str
    #: Seconds since the owning tracer was created (monotonic clock).
    ts: float
    span_id: int = 0
    parent_id: int = 0
    stage: str = ""
    #: ``span_end`` only: seconds between start and end.
    duration_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        payload: dict = {"v": SCHEMA_VERSION, "kind": self.kind,
                         "name": self.name, "ts": round(self.ts, 6)}
        if self.span_id:
            payload["span"] = self.span_id
        if self.parent_id:
            payload["parent"] = self.parent_id
        if self.stage:
            payload["stage"] = self.stage
        if self.duration_s is not None:
            payload["dur_s"] = round(self.duration_s, 6)
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "TraceEvent":
        return cls(kind=payload["kind"], name=payload["name"],
                   ts=payload.get("ts", 0.0),
                   span_id=payload.get("span", 0),
                   parent_id=payload.get("parent", 0),
                   stage=payload.get("stage", ""),
                   duration_s=payload.get("dur_s"),
                   attrs=dict(payload.get("attrs", {})))

    def render_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)


def parse_line(line: str) -> TraceEvent:
    """Parse one JSONL trace line back into a :class:`TraceEvent`."""
    return TraceEvent.from_json(json.loads(line))
