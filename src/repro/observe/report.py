"""Offline trace analysis: ``repro trace-report <trace.jsonl>``.

Reads the JSONL event stream a traced run wrote (:class:`JsonlSink`) and
renders the per-stage summary: span counts and durations per pipeline
stage, the LIFS per-depth schedule/prune/equivalence breakdown, the
Causality Analysis flip ledger, and the aggregated counter totals.
Counters from several ``counters`` events (e.g. a merged multi-run
trace file) are summed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from repro.observe.events import (
    COUNTERS,
    POINT,
    SPAN_END,
    TraceEvent,
    parse_line,
)


def load_events(path: str) -> List[TraceEvent]:
    """Parse a JSONL trace file; blank lines are skipped."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(parse_line(line))
    return events


def summarize(events: Sequence[TraceEvent]) -> dict:
    """Aggregate an event stream into the report's raw numbers."""
    stages: Dict[str, dict] = {}
    order: List[str] = []
    for event in events:
        if event.kind != SPAN_END or not event.stage:
            continue
        if event.stage not in stages:
            stages[event.stage] = {"spans": 0, "seconds": 0.0}
            order.append(event.stage)
        bucket = stages[event.stage]
        bucket["spans"] += 1
        bucket["seconds"] += event.duration_s or 0.0

    depths: Dict[int, dict] = {}
    for event in events:
        if event.name == "lifs.depth":
            depth = int(event.attrs.get("depth", 0))
            bucket = depths.setdefault(
                depth, {"executed": 0, "pruned": 0, "equivalent": 0})
            for key in bucket:
                bucket[key] += int(event.attrs.get(key, 0))

    flips = [e for e in events
             if e.kind == SPAN_END and e.name == "ca.flip"]
    flips_failed = sum(1 for e in flips if e.attrs.get("failed"))

    plans: Dict[str, dict] = {}
    plan_order: List[str] = []
    for event in events:
        if event.kind != POINT or event.name != "engine.plan":
            continue
        phase = str(event.attrs.get("phase", "")) or "?"
        if phase not in plans:
            plans[phase] = {"plans": 0, "requests": 0, "backends": {}}
            plan_order.append(phase)
        bucket = plans[phase]
        bucket["plans"] += 1
        bucket["requests"] += int(event.attrs.get("requests", 0))
        backend = str(event.attrs.get("backend", "?"))
        bucket["backends"][backend] = bucket["backends"].get(backend, 0) + 1

    counters: Dict[str, int] = {}
    for event in events:
        if event.kind == COUNTERS:
            for name, value in event.attrs.items():
                counters[name] = counters.get(name, 0) + int(value)

    wall = max((e.ts for e in events), default=0.0)
    return {
        "events": len(events),
        "wall_s": wall,
        "stage_order": order,
        "stages": stages,
        "lifs_depths": depths,
        "flips": len(flips),
        "flips_failed": flips_failed,
        "engine_plans": plans,
        "engine_plan_order": plan_order,
        "counters": counters,
    }


def render_trace_report(
        source: Union[str, Iterable[TraceEvent]]) -> str:
    """Render the human-readable summary of a trace file or event list."""
    from repro.analysis.tables import Table

    if isinstance(source, str):
        title = source
        events: Sequence[TraceEvent] = load_events(source)
    else:
        title = "<events>"
        events = list(source)
    summary = summarize(events)

    lines = [f"=== trace report: {title} ===",
             f"{summary['events']} events over "
             f"{summary['wall_s']:.3f}s"]

    if summary["stages"]:
        table = Table("per-stage summary", ["stage", "spans", "total_s"])
        for stage in summary["stage_order"]:
            bucket = summary["stages"][stage]
            table.add_row(stage, bucket["spans"],
                          f"{bucket['seconds']:.4f}")
        lines += ["", table.render()]

    if summary["lifs_depths"]:
        table = Table("LIFS per interleaving depth",
                      ["depth", "executed", "pruned", "equivalent"])
        for depth in sorted(summary["lifs_depths"]):
            bucket = summary["lifs_depths"][depth]
            table.add_row(depth, bucket["executed"], bucket["pruned"],
                          bucket["equivalent"])
        lines += ["", table.render()]

    counters = summary["counters"]
    if counters.get("engine.requests"):
        lines += ["", "execution engine: "
                      f"{counters.get('engine.requests', 0)} requests over "
                      f"{counters.get('engine.plans', 0)} plans, "
                      f"{counters.get('engine.dedup_hits', 0)} dedup hits"]
        backends = ", ".join(
            f"{name.split('.', 2)[2]}={count}"
            for name, count in sorted(counters.items())
            if name.startswith("engine.backend."))
        if backends:
            lines += [f"  backends: {backends}"]
        for phase in summary["engine_plan_order"]:
            bucket = summary["engine_plans"][phase]
            served = ", ".join(f"{backend} x{count}" for backend, count
                               in sorted(bucket["backends"].items()))
            lines += [f"  {phase}: {bucket['requests']} requests in "
                      f"{bucket['plans']} plan(s) via {served}"]

    if counters.get("snapshot.hits") or counters.get("snapshot.misses"):
        hits = counters.get("snapshot.hits", 0)
        misses = counters.get("snapshot.misses", 0)
        lines += ["", "LIFS snapshot engine: "
                      f"{hits} resumed / {misses} fresh boots, "
                      f"{counters.get('snapshot.captured', 0)} checkpoints "
                      f"captured",
                  f"  steps: {counters.get('lifs.interpreted_steps', 0)} "
                  f"interpreted, {counters.get('snapshot.saved_steps', 0)} "
                  f"saved ({counters.get('snapshot.resumed_steps', 0)} "
                  f"resumed suffix)",
                  f"  splices: {counters.get('snapshot.splices', 0)} runs "
                  f"grafted a memoized suffix "
                  f"({counters.get('snapshot.spliced_steps', 0)} steps)"]

    if counters.get("hv.wave.batches") or counters.get("hv.wave.inline"):
        dispatched = counters.get("hv.wave.dispatched", 0)
        lines += ["", "parallel waves: "
                      f"{counters.get('hv.wave.batches', 0)} batches, "
                      f"{counters.get('hv.wave.jobs', 0)} jobs "
                      f"({dispatched} dispatched to children, "
                      f"{counters.get('hv.wave.inline', 0)} inline, "
                      f"{counters.get('hv.wave.fallbacks', 0)} fallbacks)"]
        if counters.get("hv.wave.discarded"):
            lines += [f"  {counters['hv.wave.discarded']} speculative "
                      f"result(s) discarded on early exit"]

    if counters.get("policy.ranked") or counters.get("policy.pruned"):
        lines += ["", "search policy: "
                      f"{counters.get('policy.ranked', 0)} candidate(s) "
                      f"ranked, {counters.get('policy.pruned', 0)} pruned "
                      f"by error invariants, "
                      f"{counters.get('policy.experience_hits', 0)} "
                      f"experience hit(s)"]

    if summary["flips"]:
        averted = summary["flips"] - summary["flips_failed"]
        lines += ["", f"CA flips: {summary['flips']} executed, "
                      f"{averted} averted the failure, "
                      f"{summary['flips_failed']} still failed"]
        if counters.get("ca.snapshot_hits") or \
                counters.get("ca.snapshot_misses"):
            lines += [f"CA snapshot engine: "
                      f"{counters.get('ca.snapshot_hits', 0)} resumed / "
                      f"{counters.get('ca.snapshot_misses', 0)} fresh boots; "
                      f"{counters.get('ca.interpreted_steps', 0)} steps "
                      f"interpreted, "
                      f"{counters.get('ca.snapshot_saved_steps', 0)} saved, "
                      f"{counters.get('ca.snapshot_spliced_steps', 0)} "
                      f"spliced"]

    if summary["counters"]:
        width = max(len(name) for name in summary["counters"])
        lines += ["", "counters:"]
        for name in sorted(summary["counters"]):
            lines.append(f"  {name:<{width}}  {summary['counters'][name]}")

    return "\n".join(lines)
