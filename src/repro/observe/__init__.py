"""repro.observe — structured tracing and counters for the pipeline.

The observability layer every stage reports through:

* :class:`~repro.observe.tracer.Tracer` — spans, points and aggregated
  counters, fanned out to pluggable sinks; carried as an explicit
  context object (``Aitia(bug, tracer=...)``).
* :data:`~repro.observe.tracer.NULL_TRACER` — the disabled tracer; all
  instrumentation is a no-op through it, so untraced runs pay nothing.
* Sinks (:mod:`repro.observe.sinks`) — :class:`MemorySink` for tests,
  :class:`JsonlSink` for files, :class:`LiveProgressSink` for humans.
* :mod:`repro.observe.report` — the ``repro trace-report`` renderer.

See ``docs/OBSERVABILITY.md`` for the event schema and examples.
"""

from repro.observe.events import (
    COUNTERS,
    POINT,
    SPAN_END,
    SPAN_START,
    TraceEvent,
)
from repro.observe.export import (
    metric_name,
    parse_exposition,
    render_exposition,
)
from repro.observe.report import load_events, render_trace_report, summarize
from repro.observe.sinks import (
    JsonlSink,
    LiveProgressSink,
    MemorySink,
    Sink,
)
from repro.observe.tracer import NULL_TRACER, NullTracer, Span, Tracer, as_tracer

__all__ = [
    "COUNTERS",
    "JsonlSink",
    "LiveProgressSink",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "POINT",
    "SPAN_END",
    "SPAN_START",
    "Sink",
    "Span",
    "TraceEvent",
    "Tracer",
    "as_tracer",
    "load_events",
    "metric_name",
    "parse_exposition",
    "render_exposition",
    "render_trace_report",
    "summarize",
]
