"""The tracer: spans, points and counters over pluggable sinks.

A :class:`Tracer` is an explicit context object threaded through the
pipeline (``Aitia(bug, tracer=...)``, ``TriageService(tracer=...)``,
...).  It is deliberately not ambient/global: whoever owns the run owns
the tracer, and worker processes simply get none.

Disabled tracing must cost nothing measurable, so the default is the
module-level :data:`NULL_TRACER` — a :class:`NullTracer` whose every
method is a constant no-op and whose spans are a shared inert object.
Instrumented code normalizes with :func:`as_tracer` once, then calls
unconditionally.

Counters are aggregated in-process (``tracer.counters``) and emitted as
a single ``counters`` event when the tracer is closed; spans and points
stream to the sinks as they happen.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional

from repro.observe.events import (
    COUNTERS,
    POINT,
    SPAN_END,
    SPAN_START,
    TraceEvent,
)


class Span:
    """One named region of work; a context manager handed out by
    :meth:`Tracer.span`.  Attributes set during the span (via
    :meth:`set`) ride on the ``span_end`` event."""

    __slots__ = ("_tracer", "name", "stage", "attrs", "span_id",
                 "parent_id", "_started")

    def __init__(self, tracer: "Tracer", name: str, stage: str,
                 attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.stage = stage
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self._started = 0.0

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._enter_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._tracer._exit_span(self)
        return False


class _NullSpan:
    """The span of a disabled tracer: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Span/point/counter recorder fanning out to pluggable sinks."""

    enabled = True

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)
        self.counters: Dict[str, int] = {}
        self._t0 = time.monotonic()
        self._ids = itertools.count(1)
        self._stack: List[int] = []
        self._closed = False

    # -- time ----------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._t0

    # -- spans ---------------------------------------------------------
    def span(self, name: str, stage: str = "", **attrs: object):
        """Open a span: ``with tracer.span("lifs", stage="lifs") as sp``."""
        return Span(self, name, stage, dict(attrs))

    def _enter_span(self, span: Span) -> None:
        span.span_id = next(self._ids)
        span.parent_id = self._stack[-1] if self._stack else 0
        span._started = self._now()
        self._stack.append(span.span_id)
        self._emit(TraceEvent(
            kind=SPAN_START, name=span.name, ts=span._started,
            span_id=span.span_id, parent_id=span.parent_id,
            stage=span.stage, attrs=dict(span.attrs)))

    def _exit_span(self, span: Span) -> None:
        now = self._now()
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:  # pragma: no cover — misnesting
            self._stack.remove(span.span_id)
        self._emit(TraceEvent(
            kind=SPAN_END, name=span.name, ts=now,
            span_id=span.span_id, parent_id=span.parent_id,
            stage=span.stage, duration_s=now - span._started,
            attrs=dict(span.attrs)))

    # -- points and counters -------------------------------------------
    def point(self, name: str, stage: str = "", **attrs: object) -> None:
        """Record an instantaneous annotation."""
        self._emit(TraceEvent(
            kind=POINT, name=name, ts=self._now(),
            parent_id=self._stack[-1] if self._stack else 0,
            stage=stage, attrs=attrs))

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named aggregate counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    # -- lifecycle -----------------------------------------------------
    def _emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush_counters(self) -> None:
        """Emit the aggregated counter totals as one ``counters`` event."""
        if self.counters:
            self._emit(TraceEvent(kind=COUNTERS, name="counters",
                                  ts=self._now(),
                                  attrs=dict(self.counters)))

    def close(self) -> None:
        """Flush counters and close every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.flush_counters()
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class NullTracer(Tracer):
    """The disabled tracer: structurally a :class:`Tracer`, behaviourally
    nothing.  Shared as :data:`NULL_TRACER`; do not mutate."""

    enabled = False

    def __init__(self) -> None:  # no sinks, no clock
        self.sinks = []
        self.counters = {}
        self._closed = False

    def span(self, name: str, stage: str = "", **attrs: object):
        return _NULL_SPAN

    def point(self, name: str, stage: str = "", **attrs: object) -> None:
        pass

    def count(self, name: str, value: int = 1) -> None:
        pass

    def flush_counters(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled tracer; ``as_tracer(None)`` returns it.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalize an optional tracer argument: ``None`` → :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER
