"""Trace sinks: where the event stream goes.

* :class:`MemorySink` — keeps events in a list, with query helpers;
  what tests (and the benchmarks) assert against.
* :class:`JsonlSink` — one JSON object per line to a file; the format
  ``repro trace-report`` reads back.
* :class:`LiveProgressSink` — human-readable progress lines on a stream
  as spans open and close, for watching a long run.

A sink is anything with ``emit(event)`` and ``close()``.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, TextIO

from repro.observe.events import (
    COUNTERS,
    POINT,
    SPAN_END,
    SPAN_START,
    TraceEvent,
)


class Sink:
    """Interface (and safe default) for trace sinks."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover — interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Collects every event in memory; the test/benchmark sink."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- queries -------------------------------------------------------
    def find(self, name: Optional[str] = None, kind: Optional[str] = None,
             stage: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if (name is None or e.name == name)
                and (kind is None or e.kind == kind)
                and (stage is None or e.stage == stage)]

    def spans(self, name: Optional[str] = None,
              stage: Optional[str] = None) -> List[TraceEvent]:
        """Completed spans (``span_end`` events)."""
        return self.find(name=name, kind=SPAN_END, stage=stage)

    def points(self, name: Optional[str] = None) -> List[TraceEvent]:
        return self.find(name=name, kind=POINT)

    def stage_names(self) -> List[str]:
        seen: List[str] = []
        for event in self.events:
            if event.stage and event.stage not in seen:
                seen.append(event.stage)
        return seen

    def counter_totals(self) -> Dict[str, int]:
        """Totals from ``counters`` events (summed, for merged streams)."""
        totals: Dict[str, int] = {}
        for event in self.find(kind=COUNTERS):
            for name, value in event.attrs.items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals


class JsonlSink(Sink):
    """Streams events to a JSONL file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:  # pragma: no cover — emit after close
            return
        self._fh.write(event.render_line() + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class LiveProgressSink(Sink):
    """Prints a human-readable line as each span opens and closes.

    Nesting depth is rebuilt from ``parent_id`` links; spans deeper than
    ``max_depth`` (per-flip spans, say) are suppressed so the live view
    stays one screen.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 max_depth: int = 2) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.max_depth = max_depth
        self._depth: Dict[int, int] = {}

    def _attrs_text(self, attrs: dict) -> str:
        if not attrs:
            return ""
        body = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        return f" [{body}]"

    def emit(self, event: TraceEvent) -> None:
        if event.kind == SPAN_START:
            depth = self._depth.get(event.parent_id, -1) + 1
            self._depth[event.span_id] = depth
            if depth <= self.max_depth:
                indent = "  " * depth
                stage = f"{event.stage}: " if event.stage else ""
                print(f"{indent}> {stage}{event.name}"
                      f"{self._attrs_text(event.attrs)}",
                      file=self.stream, flush=True)
        elif event.kind == SPAN_END:
            depth = self._depth.pop(event.span_id, 0)
            if depth <= self.max_depth:
                indent = "  " * depth
                duration = (f" {event.duration_s:.3f}s"
                            if event.duration_s is not None else "")
                print(f"{indent}< {event.name}{duration}"
                      f"{self._attrs_text(event.attrs)}",
                      file=self.stream, flush=True)
        elif event.kind == COUNTERS:
            print("counters: " + json.dumps(dict(sorted(event.attrs.items()))),
                  file=self.stream, flush=True)
