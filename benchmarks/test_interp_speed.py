"""Interpreter fast-path throughput: the layer PR 9 optimizes.

Three measurements over the 22-bug corpus, all on the instruction-level
fast path (opcode dispatch table, decoded operands, interval-indexed
memory, O(dirty) captures, generation-cached state keys):

* **steps/sec** — raw interpretation: every bug's known failing
  schedule replayed from its boot checkpoint, fully interpreted each
  time (checkpoint policy on, as in a real run).
* **snapshots/sec / capture bytes** — O(dirty) capture rate: the same
  replay with a capture after *every* step, plus the pickled wire size
  of a mid-run checkpoint.
* **schedules/sec** — the triage replay loop this PR targets: each
  schedule answered by the execution engine resuming from the deepest
  harvested prefix checkpoint (the LIFS extension pattern), suffix
  interpreted, result bit-identical to a fresh boot.  Reported as the
  best of three timed passes so a loaded CI host does not flake the
  floor.

Results land in ``benchmarks/output/bench_interp.json``.  Like the
sibling snapshot benchmark this avoids pytest-benchmark so CI can run
it directly; ``BENCH_INTERP_BUGS=<n>`` restricts to the first *n* bugs
(CI uses 3).  The >= 5x floor over the pre-fast-path baseline is
asserted only on the full corpus.
"""

import json
import os
import pickle
import time

from conftest import OUTPUT_DIR, emit

from repro.analysis.tables import Table
from repro.corpus import registry
from repro.engine.engine import ScheduleExecutionEngine
from repro.engine.protocol import EnginePolicy, RunRequest
from repro.hypervisor.controller import ScheduleController
from repro.hypervisor.snapshot import CheckpointPolicy, boot_checkpoint

#: Whole-corpus schedule throughput of the diagnosis loop before the
#: instruction-level fast path (bench_snapshot.json, schedules_per_sec_on,
#: measured at the PR 8 seed).
BASELINE_SCHEDULES_PER_SEC = 1503.0

#: Replays per bug in each timed section.
STEP_REPS = 10
REPLAY_REPS = 100
TIMED_PASSES = 3


def _corpus():
    registry.load()
    bugs = list(registry.all_bugs())
    subset = int(os.environ.get("BENCH_INTERP_BUGS", "0"))
    if subset:
        bugs = bugs[:subset]
    return bugs, bool(subset)


def _measure_steps(bugs):
    """Full interpretation from boot: steps/sec with captures on."""
    total_steps = total_runs = 0
    elapsed = 0.0
    for bug in bugs:
        machine = bug.machine_factory()
        boot = boot_checkpoint(machine)
        schedule = bug.known_failing_schedule
        started = time.perf_counter()
        for _ in range(STEP_REPS):
            run = ScheduleController(
                machine, schedule, resume_from=boot,
                checkpoint_policy=CheckpointPolicy()).run()
            total_steps += run.steps
            total_runs += 1
        elapsed += time.perf_counter() - started
    return {
        "runs": total_runs,
        "steps": total_steps,
        "steps_per_sec": round(total_steps / max(1e-9, elapsed)),
    }


def _measure_snapshots(bugs):
    """Capture after every interpreted step: O(dirty) snapshot rate."""
    captures = 0
    elapsed = 0.0
    wire_bytes = []
    for bug in bugs:
        machine = bug.machine_factory()
        boot = boot_checkpoint(machine)
        schedule = bug.known_failing_schedule
        started = time.perf_counter()
        controller = ScheduleController(
            machine, schedule, resume_from=boot,
            checkpoint_policy=CheckpointPolicy(interval=1,
                                               max_checkpoints=1 << 30))
        controller.run()
        elapsed += time.perf_counter() - started
        captures += len(controller.checkpoints)
        if controller.checkpoints:
            mid = controller.checkpoints[len(controller.checkpoints) // 2]
            wire_bytes.append(len(pickle.dumps(mid.machine)))
    return {
        "captures": captures,
        "snapshots_per_sec": round(captures / max(1e-9, elapsed)),
        "capture_bytes_avg": round(sum(wire_bytes)
                                   / max(1, len(wire_bytes))),
    }


def _measure_replay(bugs):
    """Engine-mediated replay from the deepest prefix checkpoint —
    the triage loop's steady state.  Every resumed run is checked
    bit-identical (Mazurkiewicz signature) to a fresh inline boot of
    the same schedule."""
    work = []
    for bug in bugs:
        engine = ScheduleExecutionEngine(
            bug.machine_factory, policy=EnginePolicy(use_snapshots=True))
        schedule = bug.known_failing_schedule
        fresh = ScheduleController(bug.machine_factory(), schedule).run()
        first = eng_run = engine.run(
            RunRequest(schedule=schedule, capture_checkpoints=True))
        assert eng_run.run.signature_hash() == fresh.signature_hash(), \
            bug.bug_id
        assert str(eng_run.run.failure) == str(fresh.failure), bug.bug_id
        deepest = max(first.checkpoints, key=lambda c: c.steps) \
            if first.checkpoints else None
        work.append((bug, engine, schedule, deepest, fresh))

    best = 0.0
    for _ in range(TIMED_PASSES):
        started = time.perf_counter()
        for bug, engine, schedule, deepest, _ in work:
            for _ in range(REPLAY_REPS):
                engine.run(RunRequest(schedule=schedule,
                                      resume_from=deepest))
        elapsed = time.perf_counter() - started
        replays = REPLAY_REPS * len(work)
        best = max(best, replays / max(1e-9, elapsed))

    # Bit-identity spot check after the timed passes: the resumed run
    # still reproduces the fresh boot's signature and failure.
    for bug, engine, schedule, deepest, fresh in work:
        resumed = engine.run(RunRequest(schedule=schedule,
                                        resume_from=deepest))
        assert resumed.run.signature_hash() == fresh.signature_hash(), \
            bug.bug_id
        assert str(resumed.run.failure) == str(fresh.failure), bug.bug_id
        engine.close()
    return {
        "replays_per_pass": REPLAY_REPS * len(work),
        "passes": TIMED_PASSES,
        "schedules_per_sec": round(best, 1),
    }


def test_interp_speed():
    bugs, subset = _corpus()

    steps = _measure_steps(bugs)
    snaps = _measure_snapshots(bugs)
    replay = _measure_replay(bugs)
    speedup = replay["schedules_per_sec"] / BASELINE_SCHEDULES_PER_SEC

    table = Table(
        "Interpreter fast path: dispatch table + O(dirty) captures",
        ["metric", "value"])
    table.add_row("bugs", len(bugs))
    table.add_row("steps/sec (full interpretation)", steps["steps_per_sec"])
    table.add_row("snapshots/sec (capture every step)",
                  snaps["snapshots_per_sec"])
    table.add_row("capture bytes (pickled, avg)", snaps["capture_bytes_avg"])
    table.add_row("schedules/sec (resumed replay)",
                  replay["schedules_per_sec"])
    table.add_row("baseline schedules/sec", BASELINE_SCHEDULES_PER_SEC)
    table.add_row("speedup", f"{speedup:.2f}x")
    emit("bench_interp", table.render())

    payload = {
        "bugs": len(bugs),
        "subset": subset,
        "schedules_per_sec": replay["schedules_per_sec"],
        "baseline_schedules_per_sec": BASELINE_SCHEDULES_PER_SEC,
        "speedup": round(speedup, 2),
        "steps": steps,
        "snapshots": snaps,
        "replay": replay,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "bench_interp.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # The acceptance floor holds on the full corpus only; subsets (CI)
    # still exercise every code path and the bit-identity asserts.
    if not subset:
        assert speedup >= 5.0, \
            f"replay throughput {replay['schedules_per_sec']}/s is " \
            f"{speedup:.2f}x baseline, below the 5x floor"
