"""Extension benchmark: diagnosing a hardware-IRQ concurrency bug.

The paper's section 4.6 leaves IRQ contexts as future work, arguing the
hypervisor could inject interrupts through VT-x the way it schedules
syscalls.  The simulated kernel makes that concrete: the UART TX
interrupt is an injectable, atomic context, LIFS chooses the injection
point, and Causality Analysis flips the injection against the racing
ioctl.
"""

from conftest import emit

from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug
from repro.trace.syzkaller import run_bug_finder


def test_irq_injection_diagnosis(benchmark):
    bug = get_bug("EXT-IRQ-01")

    def pipeline():
        report = run_bug_finder(bug)
        return Aitia(bug, report=report).diagnose()

    diagnosis = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert diagnosis.reproduced

    failing = diagnosis.lifs_result.failure_run
    irq_seqs = [t.seq for t in failing.trace if t.thread == "irq0"]
    lines = [
        "Extension — IRQ-context bug (paper section 4.6 future work)",
        "",
        f"bug:   {bug.title}",
        f"crash: {failing.failure}",
        "injected handler execution (atomic): seq "
        f"{min(irq_seqs)}..{max(irq_seqs)} of {len(failing.trace)}",
        f"chain: {diagnosis.chain.render()}",
        "",
        f"LIFS schedules: {diagnosis.lifs_schedules}, "
        f"CA schedules: {diagnosis.ca_schedules}, "
        f"benign races excluded: "
        f"{diagnosis.ca_result.benign_race_count}",
    ]
    emit("ext_irq", "\n".join(lines))

    assert irq_seqs == list(range(min(irq_seqs), max(irq_seqs) + 1))
    assert diagnosis.chain.contains_race_between("A2", "I2")
