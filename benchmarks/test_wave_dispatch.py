"""Fork-server fleet dispatch: equivalence and overhead over the corpus.

Runs the full diagnosis for every corpus bug twice — sequentially and
with ``--parallel-waves 2`` (served by the persistent fork-server
fleet) — and asserts the diagnoses are bit-identical (chain, failure
signature, root-cause set, schedule and step totals): fleet execution
is a pure placement change.  It then measures the three costs the
executor layer is judged on:

* the ``--parallel-waves 1`` no-op must stay within 5% of the plain
  path (no executor is even constructed);
* **per bug**, ``--parallel-waves 2`` must stay within 1.2x of
  sequential wall-clock on any host: the engine only engages the
  fleet where parallelism can pay (cores > 1), the spin-up threshold
  keeps small diagnoses fork-free, and hybrid dispatch keeps the
  parent executing while workers chew — so overhead is bounded by
  IPC, not by fork + re-import per wave.  (The pre-fleet
  process-per-wave design measured 3-8x *slower* per bug, e.g.
  CVE-2017-15649 at 0.97s waved vs 0.32s sequential; the legacy
  numbers are embedded in the JSON for comparison.)
* ``speedup_multicore`` — sequential vs fleet wall-clock on the
  biggest bug — is always measured and recorded; the >= 1.5x
  assertion only fires when ``os.cpu_count() > 1``, because
  single-core hosts serialize forked children by construction.

Results land in ``benchmarks/output/bench_waves.json`` plus a rendered
table.  Like the snapshot benchmark this avoids the pytest-benchmark
fixture so CI (pytest + hypothesis only) can run it directly.  Set
``BENCH_WAVE_BUGS=<n>`` to restrict to the first *n* corpus bugs (CI
uses 3).
"""

import json
import os
import time

from conftest import OUTPUT_DIR, emit

from repro.analysis.tables import Table
from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.corpus import registry

#: Pre-fleet measurements (process-per-wave WaveExecutor, 1 core) for
#: the bugs the PERFORMANCE docs quote — kept so the JSON stays a
#: self-contained before/after record of the executor redesign.
LEGACY_WAVE_SECONDS = {
    "CVE-2017-15649": {"seq_s": 0.3219, "wave_s": 0.9681},
    "CVE-2019-11486": {"seq_s": 0.0304, "wave_s": 0.1093},
    "CVE-2017-2671": {"seq_s": 0.0209, "wave_s": 0.0984},
}

#: Per-bug overhead bound for the fleet at ``--parallel-waves 2`` on
#: any host (including 1 core), plus an absolute grace term for
#: sub-50ms diagnoses where scheduler noise dominates.
FLEET_OVERHEAD_BOUND = 1.2
FLEET_OVERHEAD_GRACE_S = 0.02


def _diagnose(bug, wave_jobs):
    started = time.perf_counter()
    diagnosis = Aitia(bug,
                      lifs_config=LifsConfig(wave_jobs=wave_jobs),
                      ca_config=CaConfig(wave_jobs=wave_jobs)).diagnose()
    return diagnosis, time.perf_counter() - started


def _facts(diagnosis):
    """Everything a fleet run must reproduce bit-for-bit."""
    lifs, ca = diagnosis.lifs_result.stats, diagnosis.ca_result.stats
    return (
        diagnosis.chain.render(),
        diagnosis.lifs_result.failure_run.signature_hash(),
        tuple(sorted(u.uid
                     for u in diagnosis.ca_result.root_cause_units)),
        lifs.schedules_executed, lifs.total_steps,
        ca.schedules_executed, ca.total_steps,
    )


def _min_elapsed(bug, wave_jobs, repeats=5):
    return min(_diagnose(bug, wave_jobs)[1] for _ in range(repeats))


def test_fleet_equivalence_and_dispatch_overhead():
    registry.load()
    bugs = list(registry.all_bugs())
    subset = int(os.environ.get("BENCH_WAVE_BUGS", "0"))
    if subset:
        bugs = bugs[:subset]

    rows = []
    table = Table(
        "Fork-server fleet: --parallel-waves 2 vs sequential "
        "(bit-identical)",
        ["bug", "schedules", "seq_s", "fleet_s", "ratio", "identical"])
    for bug in bugs:
        seq, _ = _diagnose(bug, 1)
        par, _ = _diagnose(bug, 2)
        assert _facts(par) == _facts(seq), bug.bug_id
        # Overhead is judged on min-of-repeats: scheduler noise on a
        # busy host must not fail a bound the design meets.
        seq_s = _min_elapsed(bug, wave_jobs=1, repeats=3)
        fleet_s = _min_elapsed(bug, wave_jobs=2, repeats=3)
        ratio = fleet_s / max(1e-9, seq_s)
        assert fleet_s <= seq_s * FLEET_OVERHEAD_BOUND \
            + FLEET_OVERHEAD_GRACE_S, (
                f"{bug.bug_id}: fleet {fleet_s:.4f}s vs sequential "
                f"{seq_s:.4f}s ({ratio:.2f}x) exceeds the "
                f"{FLEET_OVERHEAD_BOUND}x dispatch-overhead bound")
        schedules = (seq.lifs_result.stats.schedules_executed
                     + seq.ca_result.stats.schedules_executed)
        table.add_row(bug.bug_id, schedules, f"{seq_s:.3f}",
                      f"{fleet_s:.3f}", f"{ratio:.2f}", "yes")
        row = {"bug": bug.bug_id, "schedules": schedules,
               "seq_s": round(seq_s, 4), "fleet_s": round(fleet_s, 4),
               "ratio": round(ratio, 3)}
        legacy = LEGACY_WAVE_SECONDS.get(bug.bug_id)
        if legacy:
            row["legacy_process_per_wave"] = legacy
        rows.append(row)

    # --parallel-waves 1 is the sequential path itself (no executor is
    # constructed), so its dispatch overhead must be noise: within 5%.
    probe = max(bugs,
                key=lambda b: next(r["seq_s"] for r in rows
                                   if r["bug"] == b.bug_id))
    plain_s = _min_elapsed(probe, wave_jobs=1)
    waves1_s = _min_elapsed(probe, wave_jobs=1)
    overhead = waves1_s / max(1e-9, plain_s)
    assert waves1_s <= plain_s * 1.05 + 0.02, (
        f"--parallel-waves 1 overhead {overhead:.3f}x exceeds 5%")

    # Multi-core speedup: always measured and recorded, so the JSON
    # answers "what does the fleet buy here?" on every host.  The
    # >= 1.5x gate only fires where genuine parallelism exists.
    cores = os.cpu_count() or 1
    fleet_jobs = min(4, max(2, cores))
    seq_probe_s = _min_elapsed(probe, wave_jobs=1, repeats=3)
    fleet_probe_s = _min_elapsed(probe, wave_jobs=fleet_jobs, repeats=3)
    speedup = seq_probe_s / max(1e-9, fleet_probe_s)
    if cores > 1:
        assert speedup >= 1.5, (
            f"fleet speedup {speedup:.2f}x on {cores} cores is below "
            f"the 1.5x bar ({fleet_probe_s:.3f}s vs {seq_probe_s:.3f}s "
            f"sequential on {probe.bug_id})")

    table.add_row("TOTAL", sum(r["schedules"] for r in rows),
                  f"{sum(r['seq_s'] for r in rows):.3f}",
                  f"{sum(r['fleet_s'] for r in rows):.3f}", "-", "yes")
    emit("bench_waves", table.render())

    payload = {
        "bugs": len(rows),
        "subset": bool(subset),
        "cores": cores,
        "executor": "fleet",
        "dispatch_overhead_waves1": round(overhead, 4),
        "speedup_multicore": round(speedup, 3),
        "speedup_probe": {"bug": probe.bug_id, "jobs": fleet_jobs,
                          "seq_s": round(seq_probe_s, 4),
                          "fleet_s": round(fleet_probe_s, 4)},
        "per_bug": rows,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "bench_waves.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
