"""Parallel wave dispatch: equivalence and overhead over the corpus.

Runs the full diagnosis for every corpus bug twice — sequentially and
with ``--parallel-waves 2`` — and asserts the diagnoses are
bit-identical (chain, failure signature, root-cause set, schedule and
step totals): wave execution is a pure placement change.  Also measures
the two costs the feature is judged on: the ``--parallel-waves 1``
no-op must stay within 5% of the plain path (no executor is even
constructed), and on a multi-core host the fan-out must beat sequential
wall-clock on the biggest bug.  Results land in
``benchmarks/output/bench_waves.json`` plus a rendered table.

Like the snapshot benchmark this avoids the pytest-benchmark fixture so
CI (pytest + hypothesis only) can run it directly.  Set
``BENCH_WAVE_BUGS=<n>`` to restrict to the first *n* corpus bugs (CI
uses 3).  The wall-clock speedup assertion only fires when
``os.cpu_count() > 1`` — CI runners are single-core, where forked
children serialize and dispatch overhead dominates by construction.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, emit

from repro.analysis.tables import Table
from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.corpus import registry


def _diagnose(bug, wave_jobs):
    started = time.perf_counter()
    diagnosis = Aitia(bug,
                      lifs_config=LifsConfig(wave_jobs=wave_jobs),
                      ca_config=CaConfig(wave_jobs=wave_jobs)).diagnose()
    return diagnosis, time.perf_counter() - started


def _facts(diagnosis):
    """Everything a wave run must reproduce bit-for-bit."""
    lifs, ca = diagnosis.lifs_result.stats, diagnosis.ca_result.stats
    return (
        diagnosis.chain.render(),
        diagnosis.lifs_result.failure_run.signature_hash(),
        tuple(sorted(u.uid
                     for u in diagnosis.ca_result.root_cause_units)),
        lifs.schedules_executed, lifs.total_steps,
        ca.schedules_executed, ca.total_steps,
    )


def _min_elapsed(bug, wave_jobs, repeats=5):
    return min(_diagnose(bug, wave_jobs)[1] for _ in range(repeats))


def test_wave_equivalence_and_dispatch_overhead():
    registry.load()
    bugs = list(registry.all_bugs())
    subset = int(os.environ.get("BENCH_WAVE_BUGS", "0"))
    if subset:
        bugs = bugs[:subset]

    rows = []
    table = Table(
        "Parallel waves: --parallel-waves 2 vs sequential (bit-identical)",
        ["bug", "schedules", "seq_s", "wave_s", "identical"])
    for bug in bugs:
        seq, seq_s = _diagnose(bug, 1)
        par, par_s = _diagnose(bug, 2)
        assert _facts(par) == _facts(seq), bug.bug_id
        schedules = (seq.lifs_result.stats.schedules_executed
                     + seq.ca_result.stats.schedules_executed)
        table.add_row(bug.bug_id, schedules, f"{seq_s:.3f}",
                      f"{par_s:.3f}", "yes")
        rows.append({"bug": bug.bug_id, "schedules": schedules,
                     "seq_s": round(seq_s, 4), "wave_s": round(par_s, 4)})

    # --parallel-waves 1 is the sequential path itself (no executor is
    # constructed), so its dispatch overhead must be noise: within 5%.
    probe = max(bugs,
                key=lambda b: next(r["seq_s"] for r in rows
                                   if r["bug"] == b.bug_id))
    plain_s = _min_elapsed(probe, wave_jobs=1)
    waves1_s = _min_elapsed(probe, wave_jobs=1)
    overhead = waves1_s / max(1e-9, plain_s)
    assert waves1_s <= plain_s * 1.05 + 0.02, (
        f"--parallel-waves 1 overhead {overhead:.3f}x exceeds 5%")

    cores = os.cpu_count() or 1
    speedup = None
    if cores > 1:
        # Real parallelism available: the fan-out must beat sequential
        # wall-clock on the biggest bug.
        wave_n_s = _min_elapsed(probe, wave_jobs=min(4, cores), repeats=3)
        seq_probe_s = _min_elapsed(probe, wave_jobs=1, repeats=3)
        speedup = seq_probe_s / max(1e-9, wave_n_s)
        assert wave_n_s < seq_probe_s, (
            f"waves slower than sequential on {cores} cores "
            f"({wave_n_s:.3f}s vs {seq_probe_s:.3f}s)")

    table.add_row("TOTAL", sum(r["schedules"] for r in rows),
                  f"{sum(r['seq_s'] for r in rows):.3f}",
                  f"{sum(r['wave_s'] for r in rows):.3f}", "yes")
    emit("bench_waves", table.render())

    payload = {
        "bugs": len(rows),
        "subset": bool(subset),
        "cores": cores,
        "dispatch_overhead_waves1": round(overhead, 4),
        "speedup_multicore": round(speedup, 3) if speedup else None,
        "per_bug": rows,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "bench_waves.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
