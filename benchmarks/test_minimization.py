"""Reproducer minimization across fuzzer-style bloated schedules.

Not a paper table — quantifies the delta-debugging utility: how much
junk a typical fuzzer-found schedule carries, and that minimization
never loses the crash.  Bloat is synthesized deterministically: for each
corpus bug, the known failing schedule is padded with scheduling points
that never fire (dead branches, impossible occurrences).
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.minimize import minimize_schedule
from repro.core.schedule import Preemption, Schedule
from repro.corpus.registry import get_bug

BUGS = ["CVE-2017-15649", "CVE-2017-2636", "SYZ-04", "SYZ-08", "SYZ-11"]


def _bloat(bug):
    """Pad the known failing schedule with never-firing points."""
    image = bug.image
    junk = []
    for i, instr in enumerate(image.memory_instructions()):
        if len(junk) == 4:
            break
        junk.append(Preemption(
            thread=bug.threads[i % len(bug.threads)].proc,
            instr_addr=instr.addr, occurrence=50 + i,
            switch_to=None, instr_label=instr.name))
    base = bug.known_failing_schedule
    return Schedule(start_order=base.start_order,
                    preemptions=list(base.preemptions) + junk,
                    note=f"{bug.bug_id} bloated")


def test_minimization_over_corpus(benchmark):
    def run_all():
        rows = []
        for bug_id in BUGS:
            bug = get_bug(bug_id)
            bloated = _bloat(bug)
            result = minimize_schedule(bug.machine_factory, bloated)
            rows.append((bug_id, len(bloated.preemptions),
                         len(result.schedule.preemptions),
                         result.schedules_executed,
                         result.run.failed))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Reproducer minimization (delta debugging)",
                  ["Bug", "bloated points", "minimal points",
                   "verification runs", "still crashes"])
    for row in rows:
        table.add_row(row[0], row[1], row[2], row[3],
                      "yes" if row[4] else "NO")
    emit("minimization", table.render())

    for bug_id, bloated, minimal, _, crashes in rows:
        assert crashes, bug_id
        assert minimal < bloated, bug_id
        bug = get_bug(bug_id)
        assert minimal == len(bug.known_failing_schedule.preemptions), (
            f"{bug_id}: minimization must recover the hand-minimal "
            f"reproducer")
