"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered rows are emitted both to the real stdout (so they survive
pytest's capture and land in ``bench_output.txt``) and to
``benchmarks/output/<name>.txt`` for later inspection.

The expensive inputs — one full AITIA diagnosis per corpus bug — are
computed once per session and shared across benchmark modules.
"""

import os
import sys

import pytest

from repro.core.diagnose import Aitia
from repro.corpus import registry

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def emit(name: str, text: str) -> None:
    """Print a rendered table past pytest's capture and save it."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def corpus_diagnoses():
    """bug_id -> (Bug, Diagnosis) for the 22 evaluated bugs."""
    registry.load()
    result = {}
    for bug in registry.all_bugs():
        result[bug.bug_id] = (bug, Aitia(bug).diagnose())
    return result


@pytest.fixture(scope="session")
def cve_diagnoses(corpus_diagnoses):
    return [(bug, d) for bug, d in corpus_diagnoses.values()
            if bug.source == "cve"]


@pytest.fixture(scope="session")
def syzkaller_diagnoses(corpus_diagnoses):
    return [(bug, d) for bug, d in corpus_diagnoses.values()
            if bug.source == "syzkaller"]
