"""Oracle-free discovery: random-fuzzing effort per corpus bug.

Not a paper table — it validates the front end of the story the paper
takes as given: Syzkaller *stumbles* on these crashes.  The seeded
random scheduler must find every corpus failure without the recorded
reproducer, and the runs-to-crash column is the measure of how lucky the
fuzzer needs to get (the 2-interleaving bugs are visibly rarer events
than the 1-interleaving ones).
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.corpus.registry import all_bugs
from repro.trace.fuzzer import RandomScheduleFuzzer

SEED = 7
MAX_RUNS = 20_000


def test_random_fuzzing_finds_every_bug(benchmark):
    def campaign():
        rows = []
        for bug in all_bugs():
            result = RandomScheduleFuzzer(
                bug.machine_factory, seed=SEED, max_runs=MAX_RUNS).fuzz()
            rows.append((bug, result))
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)

    table = Table(
        f"Random-fuzzing effort (seed={SEED}): runs until the crash",
        ["Bug", "found", "runs", "failure"])
    for bug, result in rows:
        table.add_row(
            bug.bug_id, "yes" if result.crashed else "NO",
            result.runs_executed,
            result.failure.kind.name if result.failure else "-")
    found = sum(1 for _, r in rows if r.crashed)
    runs = [r.runs_executed for _, r in rows if r.crashed]
    summary = (f"{found}/{len(rows)} bugs found; median effort "
               f"{sorted(runs)[len(runs) // 2]} runs, max {max(runs)}")
    emit("fuzzing_effort", table.render() + "\n\n" + summary)

    # Every corpus crash must be reachable by blind fuzzing (this is what
    # makes the synthetic Syzkaller honest), and each found failure must
    # be the modeled one.
    for bug, result in rows:
        assert result.crashed, bug.bug_id
        assert result.failure.kind is bug.bug_type, bug.bug_id
