"""Figure 5: the LIFS search tree over three threads.

Regenerates the search structure of the paper's Figure 5: a race-steered
kworker invocation, search rounds ordered by interleaving count, and
partial-order-reduction pruning (the grey branches).  The output lists
per-round schedule counts, pruned candidates and equivalent runs, and
the failure-causing instruction sequence LIFS terminates with.  The
numbers come from the :mod:`repro.observe` trace (a :class:`MemorySink`
attached to the search) rather than the search's internals — the same
counters ``repro trace-report`` renders.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.corpus.registry import get_bug
from repro.kernel.failures import FailureKind
from repro.observe import MemorySink, Tracer


def test_fig5_search_tree(benchmark):
    bug = get_bug("FIG-5")
    sink = MemorySink()

    def search():
        tracer = Tracer(sink)
        lifs = LeastInterleavingFirstSearch(
            bug.machine_factory, ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION), tracer=tracer)
        result = lifs.search()
        tracer.close()
        return result

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    assert result.reproduced

    # The trace is the public accounting surface: per-depth profile from
    # the lifs.depth points, totals from the counters event.
    depths = {e.attrs["depth"]: e.attrs
              for e in sink.points(name="lifs.depth")}
    counters = sink.counter_totals()

    table = Table("Figure 5 — LIFS search over the three-thread example",
                  ["interleaving count", "schedules executed"])
    for depth in sorted(depths):
        table.add_row(depth, depths[depth]["executed"])
    lines = [
        table.render(),
        "",
        f"candidates pruned (no conflicting access): "
        f"{counters.get('lifs.pruned', 0)}",
        f"equivalent runs detected (same Mazurkiewicz trace): "
        f"{counters.get('lifs.equivalent', 0)}",
        "failure-causing sequence: "
        + " => ".join(f"{t.thread}:{t.instr_label}"
                      for t in result.failure_run.trace),
        f"interleaving count of the reproducing run: "
        f"{result.failure_run.interleavings}",
    ]
    emit("fig5_search_tree", "\n".join(lines))

    # Shape: count-0 runs both serial orders; reproduction at count 1;
    # thread K appears only via the race-steered control flow.
    assert depths[0]["executed"] == 2
    assert counters["lifs.schedules"] == result.stats.schedules_executed
    assert counters["lifs.pruned"] == result.stats.candidates_pruned
    assert result.failure_run.interleavings == 1
    assert any(t.thread.startswith("kworker/")
               for t in result.failure_run.trace)
