"""Figure 5: the LIFS search tree over three threads.

Regenerates the search structure of the paper's Figure 5: a race-steered
kworker invocation, search rounds ordered by interleaving count, and
partial-order-reduction pruning (the grey branches).  The output lists
per-round schedule counts, pruned candidates and equivalent runs, and
the failure-causing instruction sequence LIFS terminates with.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.corpus.registry import get_bug
from repro.kernel.failures import FailureKind


def test_fig5_search_tree(benchmark):
    bug = get_bug("FIG-5")

    def search():
        lifs = LeastInterleavingFirstSearch(
            bug.machine_factory, ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION))
        return lifs.search()

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    assert result.reproduced

    table = Table("Figure 5 — LIFS search over the three-thread example",
                  ["interleaving count", "schedules executed"])
    for round_index in sorted(result.stats.per_round_executed):
        table.add_row(round_index,
                      result.stats.per_round_executed[round_index])
    lines = [
        table.render(),
        "",
        f"candidates pruned (no conflicting access): "
        f"{result.stats.candidates_pruned}",
        f"equivalent runs detected (same Mazurkiewicz trace): "
        f"{result.stats.equivalent_runs}",
        "failure-causing sequence: "
        + " => ".join(f"{t.thread}:{t.instr_label}"
                      for t in result.failure_run.trace),
        f"interleaving count of the reproducing run: "
        f"{result.failure_run.interleavings}",
    ]
    emit("fig5_search_tree", "\n".join(lines))

    # Shape: count-0 runs both serial orders; reproduction at count 1;
    # thread K appears only via the race-steered control flow.
    assert result.stats.per_round_executed[0] == 2
    assert result.failure_run.interleavings == 1
    assert any(t.thread.startswith("kworker/")
               for t in result.failure_run.trace)
