"""Intake-daemon load benchmark: warm-path latency and shed safety.

Not a paper table — it measures what the ``repro serve`` subsystem
promises: the *steady state of a triage daemon is duplicate traffic*,
and duplicates must be answered from the hot tier without touching the
pipeline.  Two phases against an in-process daemon (stub diagnoser, so
nothing here pays for a real diagnosis):

1. **warm path** — thousands of duplicate-heavy submissions from
   concurrent keep-alive asyncio clients; asserts the server-side
   cache-hit handling latency is sub-millisecond at the median.
2. **backpressure** — floods a deliberately tiny bounded queue with
   distinct signatures; sheds are explicit 429s and *every accepted
   job completes exactly once* (shed requests never lose accepted
   work), then the shed signatures resubmit cleanly once the queue
   drains.

Results land in ``benchmarks/output/bench_daemon.json`` plus a
rendered table.
"""

import asyncio
import functools
import json
import os
import time

from conftest import OUTPUT_DIR, emit

from repro.analysis.tables import Table
from repro.corpus.registry import all_bugs, get_bug, load
from repro.daemon import (
    DaemonClient,
    DaemonConfig,
    start_daemon,
    stub_diagnose_job,
)
from repro.observe.export import parse_exposition
from repro.service.artifacts import CrashArtifact
from repro.trace.syzkaller import run_bug_finder

CLIENTS = 8            #: concurrent keep-alive connections
ROUNDS = 250           #: submissions per client (CLIENTS * ROUNDS total)
UNIQUE = 4             #: distinct signatures the duplicates cycle over
SHED_MAX_DEPTH = 6     #: bounded queue depth for the backpressure phase
SHED_SUBMITS = 18      #: distinct signatures thrown at the tiny queue

WARM_P50_BUDGET_S = 0.001  #: the acceptance bound: sub-ms warm median


@functools.lru_cache(maxsize=None)
def artifact_text(bug_id: str) -> str:
    return CrashArtifact.from_report(run_bug_finder(get_bug(bug_id))).render()


def quantile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def assert_reconciled(metrics):
    """accepted == completed + shed + in-flight, at the two levels the
    daemon promises (see docs/SERVICE.md)."""
    shed = sum(v for k, v in metrics.items()
               if k.startswith("aitia_daemon_shed_") and k.endswith("_total"))
    assert metrics.get("aitia_daemon_submissions_total", 0) == (
        metrics.get("aitia_daemon_accepted_total", 0)
        - metrics.get("aitia_daemon_recovered_total", 0)
        + metrics.get("aitia_daemon_deduped_total", 0)
        + metrics.get("aitia_daemon_cache_hits_total", 0)
        + metrics.get("aitia_daemon_rejected_total", 0)
        + shed)
    assert metrics.get("aitia_daemon_accepted_total", 0) == (
        metrics.get("aitia_daemon_completed_total", 0)
        + metrics.get("aitia_daemon_failed_total", 0)
        + metrics.get("aitia_daemon_timed_out_total", 0)
        + metrics.get("aitia_daemon_in_flight", 0))


async def _warm_phase(tmp_path):
    config = DaemonConfig(port=0, data_dir=str(tmp_path / "warm"),
                          diagnoser=stub_diagnose_job,
                          poll_interval_s=0.002)
    daemon = await start_daemon(config)
    texts = [artifact_text(f"SYZ-{n + 1:02d}") for n in range(UNIQUE)]
    try:
        # Seed: diagnose each unique signature once.
        seed = DaemonClient("127.0.0.1", daemon.port)
        for text in texts:
            response = await seed.submit(text)
            assert response.status == 202
        deadline = time.monotonic() + 30
        while daemon.metrics.count("completed") < UNIQUE:
            assert time.monotonic() < deadline
            await asyncio.sleep(0.01)
        await seed.close()

        async def flood(worker_id):
            client = DaemonClient("127.0.0.1", daemon.port)
            latencies = []
            for i in range(ROUNDS):
                text = texts[(worker_id + i) % UNIQUE]
                started = time.perf_counter()
                response = await client.submit(text)
                latencies.append(time.perf_counter() - started)
                assert response.status == 200
                assert response.json()["status"] == "cache_hit"
            await client.close()
            return latencies

        started = time.monotonic()
        per_client = await asyncio.gather(
            *(flood(i) for i in range(CLIENTS)))
        wall_s = time.monotonic() - started

        client_lat = [s for lats in per_client for s in lats]
        warm_hist = daemon.metrics.histograms["warm_handle_seconds"]
        scrape = DaemonClient("127.0.0.1", daemon.port)
        metrics = parse_exposition(
            (await scrape.request("GET", "/metrics")).text)
        await scrape.close()
        assert_reconciled(metrics)
        assert metrics["aitia_daemon_cache_hits_total"] == CLIENTS * ROUNDS
        assert metrics["aitia_daemon_cache_hits_hot_total"] >= (
            CLIENTS * ROUNDS - UNIQUE)
        return {
            "submissions": CLIENTS * ROUNDS + UNIQUE,
            "cache_hits": int(metrics["aitia_daemon_cache_hits_total"]),
            "clients": CLIENTS,
            "wall_s": round(wall_s, 3),
            "throughput_rps": round(CLIENTS * ROUNDS / wall_s, 1),
            "server_warm_p50_ms": round(warm_hist.quantile(0.50) * 1e3, 4),
            "server_warm_p99_ms": round(warm_hist.quantile(0.99) * 1e3, 4),
            "client_p50_ms": round(quantile(client_lat, 0.50) * 1e3, 4),
            "client_p99_ms": round(quantile(client_lat, 0.99) * 1e3, 4),
        }, warm_hist.quantile(0.50)
    finally:
        await daemon.stop()


async def _shed_phase(tmp_path):
    load()
    config = DaemonConfig(port=0, data_dir=str(tmp_path / "shed"),
                          diagnoser=stub_diagnose_job,
                          poll_interval_s=0.002,
                          max_depth=SHED_MAX_DEPTH, paused=True)
    daemon = await start_daemon(config)
    bug_ids = [b.bug_id for b in all_bugs()][:SHED_SUBMITS]
    try:
        client = DaemonClient("127.0.0.1", daemon.port)
        accepted, shed = [], []
        for bug_id in bug_ids:
            response = await client.submit(artifact_text(bug_id))
            if response.status == 202:
                accepted.append((bug_id, response.json()["job_id"]))
            else:
                assert response.status == 429
                assert response.json()["error"] == "queue_full"
                shed.append(bug_id)
        assert len(accepted) == SHED_MAX_DEPTH  # bound enforced exactly
        assert len(shed) == SHED_SUBMITS - SHED_MAX_DEPTH

        # Drain: every accepted job completes; nothing accepted is lost.
        daemon.paused = False
        for _, job_id in accepted:
            job = await client.wait_for_job(job_id)
            assert job["status"] == "succeeded"
        assert len(daemon.store) == len(accepted)

        # The shed signatures were refused loudly, not dropped silently:
        # resubmitting them after the drain succeeds.
        for bug_id in shed:
            response = await client.submit(artifact_text(bug_id))
            assert response.status == 202
            job = await client.wait_for_job(response.json()["job_id"])
            assert job["status"] == "succeeded"

        metrics = parse_exposition(
            (await client.request("GET", "/metrics")).text)
        await client.close()
        assert_reconciled(metrics)
        assert metrics["aitia_daemon_accepted_total"] == SHED_SUBMITS
        assert metrics["aitia_daemon_completed_total"] == SHED_SUBMITS
        assert metrics["aitia_daemon_in_flight"] == 0
        return {
            "distinct_submissions": SHED_SUBMITS,
            "max_depth": SHED_MAX_DEPTH,
            "accepted_first_wave": len(accepted),
            "shed_first_wave": len(shed),
            "shed_responses_429": int(
                metrics["aitia_daemon_shed_queue_full_total"]),
            "completed_total": int(
                metrics["aitia_daemon_completed_total"]),
            "accepted_jobs_lost": 0,
        }
    finally:
        await daemon.stop()


def test_daemon_load(tmp_path):
    warm, warm_p50_s = asyncio.run(_warm_phase(tmp_path))
    shed = asyncio.run(_shed_phase(tmp_path))

    # The acceptance bound: the warm path never touches the pipeline or
    # the disk, so the server-side median must be sub-millisecond.
    assert warm_p50_s < WARM_P50_BUDGET_S, (
        f"warm-path p50 {warm_p50_s * 1e3:.3f}ms over the "
        f"{WARM_P50_BUDGET_S * 1e3:.1f}ms budget")

    table = Table(
        f"repro serve under load — {CLIENTS} keep-alive clients, "
        f"{CLIENTS * ROUNDS} duplicate submissions",
        ["measure", "value"])
    table.add_row("cache hits served", warm["cache_hits"])
    table.add_row("throughput (req/s)", warm["throughput_rps"])
    table.add_row("server warm p50 (ms)", f"{warm['server_warm_p50_ms']:.4f}")
    table.add_row("server warm p99 (ms)", f"{warm['server_warm_p99_ms']:.4f}")
    table.add_row("client rtt p50 (ms)", f"{warm['client_p50_ms']:.4f}")
    table.add_row("client rtt p99 (ms)", f"{warm['client_p99_ms']:.4f}")
    table.add_row("shed: accepted/shed of "
                  f"{SHED_SUBMITS} (depth {SHED_MAX_DEPTH})",
                  f"{shed['accepted_first_wave']}/"
                  f"{shed['shed_first_wave']}")
    table.add_row("shed: accepted jobs lost", shed["accepted_jobs_lost"])
    emit("bench_daemon", table.render())

    payload = {"warm_path": warm, "backpressure": shed,
               "warm_p50_budget_ms": WARM_P50_BUDGET_S * 1e3}
    with open(os.path.join(OUTPUT_DIR, "bench_daemon.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
