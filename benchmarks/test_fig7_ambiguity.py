"""Figure 7: nested/surrounding data races and the ambiguity case.

Regenerates the paper's construction: the race A1 => B2 *surrounds*
A2 => B1, so flipping it alone is impossible (the required order is
cyclic); Causality Analysis flips the nested race first, then both
together, and — because each flip independently averts the failure —
reports the surrounding race as ambiguous.
"""

from conftest import emit

from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug


def test_fig7_ambiguity(benchmark):
    bug = get_bug("FIG-7")
    diagnosis = benchmark.pedantic(lambda: Aitia(bug).diagnose(),
                                   rounds=1, iterations=1)
    assert diagnosis.reproduced
    result = diagnosis.ca_result

    lines = ["Figure 7 — nested and surrounding races (ambiguity)", ""]
    for test in result.tests:
        mode = "nested-first" if test.note else "direct"
        lines.append(
            f"step {test.step}: flip {test.unit} [{mode}] -> "
            f"{'still fails' if test.failed else 'failure averted'}")
    ambiguous = [str(u) for u in result.root_cause_units
                 if u.uid in result.ambiguous_uids]
    lines += [
        "",
        f"root causes: "
        f"{[str(u) for u in result.root_cause_units]}",
        f"ambiguous:   {ambiguous}",
        f"chain:       {diagnosis.chain.render()}",
    ]
    emit("fig7_ambiguity", "\n".join(lines))

    assert diagnosis.chain.has_ambiguity
    assert len(ambiguous) == 1
    assert "A1 => B2" in ambiguous[0]
    # The nested race's own flip was testable and unambiguous.
    nested = [u for u in result.root_cause_units
              if u.uid not in result.ambiguous_uids]
    assert any("A2 => B1" in str(u) for u in nested)
