"""Figure 8: the user-agent / hypervisor hypercall workflow.

Regenerates the paper's component walkthrough on the KVM irqfd bug:
kcov profiling, hcall_monitor on a memory-accessing instruction, the
trampoline park, the watchpoint install, hcall_resume of the other
syscall, and the race report that crosses into the invoked kworker.
"""

from conftest import emit

from repro.corpus.registry import get_bug
from repro.hypervisor.agent import UserAgent


def test_fig8_hypercall_workflow(benchmark):
    bug = get_bug("SYZ-04")
    agent = UserAgent(bug.machine_factory)

    def probe():
        profile = agent.profile_thread("A")
        races, run = agent.monitor_and_resume("A", "A2", resume="B")
        return profile, races, run

    profile, races, run = benchmark.pedantic(probe, rounds=1, iterations=1)

    lines = [
        "Figure 8 — user agent / hypervisor workflow (KVM irqfd bug)",
        "",
        "1. kcov coverage of thread A -> disassembled memory instructions:",
        f"   {', '.join(profile.memory_labels)}",
        "",
        "2. hcall_monitor(A, A2): breakpoint installed; A parks on the",
        "   trampoline; watchpoint on the address A2 references",
        "3. hcall_resume(B): B runs, queues the shutdown work; the kworker",
        "   trips the watchpoint:",
    ]
    for race in races:
        lines.append(f"   data race detected: {race}")
    outcome = (f"and the probe run even reproduces the crash: "
               f"{run.failure}" if run.failed
               else "the probe run completes without failing")
    lines += ["", f"({outcome})"]
    emit("fig8_agent", "\n".join(lines))

    pairs = {(r.monitored_label, r.racing_thread.split('/')[0],
              r.racing_label) for r in races}
    assert ("A2", "kworker", "K1") in pairs
    assert "A2" in profile.memory_labels
