"""Table 1: the three-requirement comparison matrix.

Every diagnoser — AITIA and the four baseline families — runs over the
full 22-bug corpus; the matrix of comprehensive / pattern-agnostic /
concise verdicts is derived from the measured outcomes (see
``repro.analysis.requirements`` for the grading rules) and must match
the paper's Table 1:

    AITIA    v v v        Kairux   - v v
    Coop     ^ - v        MUVI     ^ - v
    REPT/RR  v v -
"""

from conftest import emit

from repro.analysis.requirements import (
    Verdict,
    aitia_row,
    score_tool,
)
from repro.analysis.tables import render_table
from repro.baselines import ALL_BASELINES


def test_table1_matrix(corpus_diagnoses, benchmark):
    bugs = [bug for bug, _ in corpus_diagnoses.values()]
    diagnoses = [d for _, d in corpus_diagnoses.values()]

    def build_rows():
        rows = [aitia_row(bugs, diagnoses)]
        for cls in ALL_BASELINES:
            tool = cls()
            reports = [tool.diagnose(b, d)
                       for b, d in zip(bugs, diagnoses)]
            rows.append(score_tool(tool, bugs, reports))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    body = render_table(
        "Table 1 — root cause diagnosis requirements "
        "(v = satisfied, ^ = conditional, - = not satisfied)",
        ["Tool", "Comprehensive", "Pattern-agnostic", "Concise",
         "diagnosed"],
        [r.cells() for r in rows])
    evidence = "\n".join(r.evidence() for r in rows)
    emit("table1_requirements", body + "\n\nEvidence:\n" + evidence)

    by_tool = {r.tool: r for r in rows}
    assert by_tool["AITIA"].comprehensive is Verdict.YES
    assert by_tool["AITIA"].pattern_agnostic is Verdict.YES
    assert by_tool["AITIA"].concise is Verdict.YES
    assert by_tool["Kairux"].comprehensive is Verdict.NO
    assert by_tool["Kairux"].pattern_agnostic is Verdict.YES
    assert by_tool["Kairux"].concise is Verdict.YES
    assert by_tool["CoopLocalization"].comprehensive is Verdict.PARTIAL
    assert by_tool["CoopLocalization"].pattern_agnostic is Verdict.NO
    assert by_tool["MUVI"].comprehensive is Verdict.PARTIAL
    assert by_tool["MUVI"].pattern_agnostic is Verdict.NO
    assert by_tool["MUVI"].concise is Verdict.YES
    assert by_tool["Record&Replay"].comprehensive is Verdict.YES
    assert by_tool["Record&Replay"].concise is Verdict.NO
