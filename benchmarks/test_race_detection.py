"""Race-detection comparison: lockset vs vector-clock happens-before.

Not a paper table — this quantifies the refinement the happens-before
engine adds on top of the lockset-based derivation the paper's
definitions imply: pairs ordered transitively (lock hand-offs, spawn
edges) are provably unflippable, so removing them saves Causality
Analysis flip tests while never touching the chain.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.happens_before import find_data_races_hb
from repro.core.races import find_data_races


def test_lockset_vs_happens_before(corpus_diagnoses, benchmark):
    def compute():
        rows = []
        for bug, d in corpus_diagnoses.values():
            run = d.lifs_result.failure_run
            lockset = find_data_races(run.accesses)
            hb = find_data_races_hb(run.accesses, run.trace, bug.image,
                                    run.spawn_events)
            rows.append((bug.bug_id, len(lockset), len(hb),
                         d.chain.race_count))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = Table(
        "Race detection — lockset vs happens-before on the failure runs",
        ["Bug", "lockset races", "HB races", "chain races"])
    for row in rows:
        table.add_row(*row)
    saved = sum(r[1] - r[2] for r in rows)
    summary = (f"happens-before removes {saved} provably ordered pairs "
               f"across the corpus without losing any chain race")
    emit("race_detection", table.render() + "\n\n" + summary)

    for bug_id, lockset, hb, chain in rows:
        assert hb <= lockset, bug_id
        assert chain <= hb, bug_id  # the chain survives the refinement
