"""Scalability sweep: diagnosis cost vs benign-race density.

Not a paper table — it characterizes how both stages scale with the one
parameter the kernel controls in practice: how many benign races
surround the bug (the paper's failed executions averaged 108.4 detected
races).  The workload is the Figure 2 bug salted with a growing number
of racy statistics counters; the real races and the chain stay fixed
while the search and test spaces grow.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.causality import CausalityAnalysis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec

SALT_LEVELS = [0, 4, 8, 16, 32]


def _fig2_with_salt(counters: int):
    b = ProgramBuilder()
    with b.function("fanout_add") as f:
        for i in range(counters):
            f.inc(f.g(f"stat{i}"), 1, label=f"AS{i}")
        f.load("r0", f.g("po_running"), label="A2")
        f.brz("r0", "A3", label="A2b")
        f.alloc("r1", 16, tag="match", label="A5")
        f.store(f.g("po_fanout"), f.r("r1"), label="A6")
        f.call("fanout_link", label="A8")
        f.ret(label="A3")
    with b.function("fanout_link") as f:
        f.list_add(f.g("global_list"), f.i(77), label="A12")
    with b.function("packet_do_bind") as f:
        for i in range(counters):
            f.inc(f.g(f"stat{i}"), 1, label=f"BS{i}")
        f.load("r0", f.g("po_fanout"), label="B2")
        f.brnz("r0", "B3", label="B2b")
        f.call("unregister_hook", label="B5")
        f.ret(label="B3")
    with b.function("unregister_hook") as f:
        f.store(f.g("po_running"), f.i(0), label="B11")
        f.load("r0", f.g("po_fanout"), label="B12")
        f.brz("r0", "B14", label="B12b")
        f.call("fanout_unlink", label="B13")
        f.ret(label="B14")
    with b.function("fanout_unlink") as f:
        f.list_contains("r1", f.g("global_list"), f.i(77), label="B17a")
        f.binop("r2", "eq", f.r("r1"), f.i(0))
        f.bug_on("r2", "sk not on global_list", label="B17")
    image = b.build()

    def factory():
        return KernelMachine(
            image,
            [ThreadSpec("A", "fanout_add"),
             ThreadSpec("B", "packet_do_bind")],
            globals_init={"po_running": 1, "po_fanout": 0,
                          "global_list": ()})
    return factory


def test_cost_vs_benign_density(benchmark):
    def sweep():
        rows = []
        for counters in SALT_LEVELS:
            factory = _fig2_with_salt(counters)
            lifs = LeastInterleavingFirstSearch(
                factory, ["A", "B"],
                FailureMatcher(kind=FailureKind.ASSERTION))
            lifs_result = lifs.search()
            assert lifs_result.reproduced
            ca = CausalityAnalysis(factory, lifs_result).analyze()
            rows.append((counters,
                         lifs_result.stats.schedules_executed,
                         len(lifs_result.races),
                         ca.stats.schedules_executed,
                         ca.chain.race_count))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        "Scalability — cost vs benign-race density (Figure 2 bug)",
        ["benign counters", "LIFS schedules", "races detected",
         "CA schedules", "chain races"])
    for row in rows:
        table.add_row(*row)
    emit("scalability", table.render())

    # The chain is invariant; detected races and both stages' work grow
    # monotonically with the salt.
    chains = {row[4] for row in rows}
    assert chains == {3}
    lifs_counts = [row[1] for row in rows]
    ca_counts = [row[3] for row in rows]
    assert lifs_counts == sorted(lifs_counts)
    assert ca_counts == sorted(ca_counts)
    assert rows[-1][2] > rows[0][2] + 20
