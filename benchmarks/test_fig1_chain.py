"""Figure 1 / Figure 3: the abstract two-race example and its chain.

Regenerates the paper's introductory example: the multi-variable race on
``ptr_valid``/``ptr`` whose causality chain is
``A1 => B1  ->  B2 => A2  ->  NULL dereference``.
"""

from conftest import emit

from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug


def test_fig1_causality_chain(benchmark):
    bug = get_bug("FIG-1")
    diagnosis = benchmark.pedantic(lambda: Aitia(bug).diagnose(),
                                   rounds=1, iterations=1)
    assert diagnosis.reproduced

    lines = [
        "Figure 1/3 — abstract two-race failure and its causality chain",
        "",
        f"failure:  {diagnosis.lifs_result.failure_run.failure}",
        "failure-causing sequence: "
        + " => ".join(t.instr_label
                      for t in diagnosis.lifs_result.failure_run.trace),
        f"chain:    {diagnosis.chain.render()}",
    ]
    emit("fig1_chain", "\n".join(lines))

    assert diagnosis.chain.contains_race_between("A1", "B1")
    assert diagnosis.chain.contains_race_between("B2", "A1b")
    assert diagnosis.chain.race_count == 2
