"""Micro-benchmarks of the substrate primitives.

These use pytest-benchmark's statistical mode (many rounds) — unlike the
table harnesses, which measure one-shot pipeline runs.  They exist to
catch performance regressions in the pieces everything else multiplies:
machine stepping, schedule enforcement, race derivation, and the flip
planner's topological sort.
"""

import pytest

from repro.core.causality import CausalityAnalysis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.core.races import find_data_races
from repro.hypervisor.controller import ScheduleController, serial_schedule
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec


def _loop_machine(iterations=200):
    b = ProgramBuilder()
    with b.function("main") as f:
        f.store(f.g("n"), iterations)
        f.load("i", f.g("n"), label="top")
        f.brz("i", "out")
        f.binop("i", "sub", f.r("i"), 1)
        f.store(f.g("n"), f.r("i"))
        f.inc(f.g("work"), 1)
        f.jmp("top")
        f.ret(label="out")
    image = b.build()
    return KernelMachine(image, [ThreadSpec("T", "main")])


def test_machine_step_throughput(benchmark):
    """Raw interpreter speed: a 200-iteration counting loop."""

    def run():
        machine = _loop_machine()
        thread = machine.thread("T")
        while not thread.done:
            machine.step("T")
        return machine

    machine = benchmark(run)
    assert machine.memory.load(machine.memory.global_addr("work")) == 200


def test_controller_serial_run(benchmark):
    """Enforcement overhead on a two-thread serial run."""
    from helpers_bench import fig2_machine

    run = benchmark(lambda: ScheduleController(
        fig2_machine(), serial_schedule(["A", "B"])).run())
    assert run.failure is None


def test_race_derivation(benchmark):
    """find_data_races over a realistic failure run's access log."""
    from helpers_bench import fig2_machine
    controller = ScheduleController(fig2_machine(),
                                    serial_schedule(["B", "A"]))
    accesses = controller.run().accesses

    races = benchmark(lambda: find_data_races(accesses))
    assert len(races) >= 1


def test_full_diagnosis_latency(benchmark):
    """End-to-end LIFS + CA on the unsalted Figure 2 model."""
    from helpers_bench import fig2_factory

    def diagnose():
        factory = fig2_factory()
        lifs = LeastInterleavingFirstSearch(
            factory, ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        return CausalityAnalysis(factory, result).analyze()

    analysis = benchmark(diagnose)
    assert analysis.chain.race_count == 3
