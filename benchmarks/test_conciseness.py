"""Section 5.2 conciseness statistics.

Regenerates the paper's numbers on how much a causality chain reduces
developer effort: per failed execution, the number of memory-accessing
instruction executions, the number of individual data races detected,
and the number of races in the final chain — plus the averages the paper
quotes (9592.8 accesses, 108.4 races, 3.0 chain races on their testbed;
our models are smaller, so the *ratios* are the reproduced shape).
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.races import count_memory_instructions


def test_conciseness_statistics(syzkaller_diagnoses, benchmark):
    def compute():
        rows = []
        for bug, d in syzkaller_diagnoses:
            failing = d.lifs_result.failure_run
            rows.append((
                bug.bug_id,
                count_memory_instructions(failing.accesses),
                len(d.lifs_result.races),
                d.chain.race_count,
                d.ca_result.benign_race_count,
            ))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = Table(
        "Section 5.2 — conciseness: accesses vs races vs chain",
        ["Bug", "mem accesses", "data races", "races in chain",
         "benign excluded"])
    for row in rows:
        table.add_row(*row)
    n = len(rows)
    avg_access = sum(r[1] for r in rows) / n
    avg_races = sum(r[2] for r in rows) / n
    avg_chain = sum(r[3] for r in rows) / n
    summary = (
        f"averages: {avg_access:.1f} memory accesses, "
        f"{avg_races:.1f} data races, {avg_chain:.1f} races per chain\n"
        f"(paper, real kernel: 9592.8 accesses, 108.4 races, 3.0 chain "
        f"races — same ordering, ratios "
        f"{avg_access / avg_chain:.0f}:{avg_races / avg_chain:.1f}:1 here)")
    emit("conciseness", table.render() + "\n\n" + summary)

    # Shape: chain << races << accesses, chains average ~3.
    assert avg_chain < avg_races < avg_access
    assert avg_races / avg_chain > 4
    assert 1.5 <= avg_chain <= 4.5
    # Benign races never leak into any chain.
    for bug, d in syzkaller_diagnoses:
        chain_keys = {r.key for r in d.chain.races}
        benign_keys = {r.key for u in d.ca_result.benign_units
                       for r in u.races}
        assert not chain_keys & benign_keys
