"""Figure 4: the complex asynchronous bug patterns of the Linux kernel.

The paper's Figure 4 shows three shapes LIFS must handle without
predefined patterns:

* (a) a kworker invoked only through a race-steered control flow, racing
  both syscalls (the KVM irqfd bug, also Figure 9);
* (b) an RCU callback freeing an object a syscall still uses;
* (c) a *single* system call racing the background thread it queued.

This benchmark diagnoses one corpus bug per shape and verifies that each
chain crosses the thread boundary into the asynchronous context — the
capability the evaluation highlights ("LIFS effectively reproduces all
bug patterns described in Figure 4").
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug

PATTERNS = [
    ("(a) race-steered kworker", "SYZ-04", "kworker"),
    ("(b) RCU callback", "EXT-RCU-01", "rcu"),
    ("(c) single syscall vs its own work", "SYZ-05", "kworker"),
]


def test_fig4_asynchronous_patterns(benchmark):
    def run_all():
        return {bug_id: Aitia(get_bug(bug_id)).diagnose()
                for _, bug_id, _ in PATTERNS}

    diagnoses = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Figure 4 — asynchronous bug patterns, all diagnosed",
                  ["pattern", "bug", "contexts in failure run",
                   "chain"])
    for name, bug_id, prefix in PATTERNS:
        d = diagnoses[bug_id]
        assert d.reproduced, bug_id
        threads = sorted({t.thread.split("/")[0]
                          for t in d.lifs_result.failure_run.trace})
        table.add_row(name, bug_id, "+".join(threads), d.chain.render())
    emit("fig4_patterns", table.render())

    for name, bug_id, prefix in PATTERNS:
        d = diagnoses[bug_id]
        chain_threads = set()
        for race in d.chain.races:
            chain_threads.add(race.first.thread.split("/")[0])
            chain_threads.add(race.second.thread.split("/")[0])
        assert prefix in chain_threads, (
            f"{bug_id}: chain must cross into the {prefix} context")
    # Pattern (c): one initial syscall only.
    syz05 = get_bug("SYZ-05")
    assert len(syz05.threads) == 1
