"""Figure 6: the step-by-step Causality Analysis of CVE-2017-15649.

Regenerates the paper's walkthrough: the failure-causing instruction
sequence from LIFS, then each backward flip test with its outcome and
the races that disappeared, ending in the constructed causality chain
with its conjunction node (Figure 6(b) / Figure 3).
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.causality import CausalityAnalysis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.corpus.registry import get_bug
from repro.kernel.failures import FailureKind


def test_fig6_causality_steps(benchmark):
    bug = get_bug("CVE-2017-15649")
    lifs = LeastInterleavingFirstSearch(
        bug.machine_factory,
        [t.proc for t in bug.threads],
        FailureMatcher(kind=FailureKind.ASSERTION, location="B17"))
    lifs_result = lifs.search()
    assert lifs_result.reproduced

    def analyze():
        ca = CausalityAnalysis(bug.machine_factory, lifs_result)
        return ca.analyze()

    result = benchmark.pedantic(analyze, rounds=1, iterations=1)

    input_seq = " => ".join(
        t.instr_label for t in lifs_result.failure_run.trace
        if not t.instr_label.endswith("b") and "stat" not in t.instr_label)
    table = Table("Figure 6 — Causality Analysis steps (CVE-2017-15649)",
                  ["step", "flipped race", "kernel failed?",
                   "disappeared races"])
    uid_name = {u.uid: str(u) for u in result.root_cause_units}
    uid_name.update({u.uid: str(u) for u in result.benign_units})
    interesting = [t for t in result.tests
                   if "stat" not in str(t.unit)]
    for test in interesting:
        disappeared = ", ".join(
            uid_name.get(uid, f"unit#{uid}")
            for uid in sorted(test.disappeared_uids)
            if "stat" not in uid_name.get(uid, "")) or "-"
        table.add_row(test.step, str(test.unit),
                      "yes (benign)" if test.failed else "no (root cause)",
                      disappeared)

    lines = [
        f"LIFS output (input to Causality Analysis):\n  {input_seq}",
        "",
        table.render(),
        "",
        f"constructed chain: {result.chain.render()}",
        f"benign races excluded: {result.benign_race_count}",
    ]
    emit("fig6_causality_steps", "\n".join(lines))

    # Shape: backward testing, conjunction node, three root-cause races.
    assert result.chain.contains_race_between("B2", "A6")
    assert result.chain.contains_race_between("A2", "B11")
    assert result.chain.contains_race_between("A6", "B12")
    assert any(n.is_conjunction for n in result.chain.nodes)
    assert result.benign_race_count >= 10
