"""Section 5.3: per-baseline diagnosis capability over the corpus.

Regenerates the comparison claims: Kairux points at a single instruction
(never the full multi-race story); cooperative bug localization covers
single-variable bugs only; MUVI explains only the tightly correlated
multi-variable bugs (3-ish of the 12 Syzkaller bugs); record&replay is
complete but unfiltered.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.baselines import ALL_BASELINES


def test_baseline_capability(corpus_diagnoses, benchmark):
    bugs = [bug for bug, _ in corpus_diagnoses.values()]
    diagnoses = [d for _, d in corpus_diagnoses.values()]

    def run_all():
        results = {}
        for cls in ALL_BASELINES:
            tool = cls()
            results[tool.name] = [tool.diagnose(b, d)
                                  for b, d in zip(bugs, diagnoses)]
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Section 5.3 — diagnosis capability by bug class "
        "(fully diagnosed = output covers the whole chain)",
        ["Tool", "single-var", "multi-var", "loosely-corr", "total"])
    classes = {
        "single-var": lambda b: not b.multi_variable,
        "multi-var": lambda b: b.multi_variable and not b.loosely_correlated,
        "loosely-corr": lambda b: b.loosely_correlated,
    }
    for tool_name, reports in results.items():
        cells = [tool_name]
        total_hits = 0
        for predicate in classes.values():
            subset = [r for b, r in zip(bugs, reports) if predicate(b)]
            hits = sum(1 for r in subset if r.comprehensive)
            total_hits += hits
            cells.append(f"{hits}/{len(subset)}")
        cells.append(f"{total_hits}/{len(bugs)}")
        table.add_row(*cells)
    emit("baseline_capability", table.render())

    kairux = results["Kairux"]
    coop = results["CoopLocalization"]
    muvi = results["MUVI"]
    replay = results["Record&Replay"]

    # Kairux: single instructions never cover multi-race chains.
    assert sum(r.comprehensive for r in kairux) <= 2
    # Coop: covers some single-variable bugs, but never a bug whose chain
    # actually spans multiple races on multiple variables (a chain that
    # collapsed to one race is coverable by one pattern, multi-variable
    # label or not).
    deep_multi = {
        b.bug_id for b, d in zip(bugs, diagnoses)
        if b.multi_variable and d.chain.race_count >= 2}
    assert not any(r.comprehensive for r in coop
                   if r.bug_id in deep_multi)
    assert any(r.comprehensive for r in coop)
    # MUVI: diagnoses only a few of the 12 syzkaller bugs (paper: 3).
    syz = [r for b, r in zip(bugs, muvi) if b.bug_id.startswith("SYZ-")]
    assert 2 <= sum(r.diagnosed for r in syz) <= 5
    # Replay: everything, unfiltered.
    assert all(r.comprehensive for r in replay)
    assert sum(not r.concise for r in replay) >= 20
