"""Table 3: the 12 Syzkaller-reported concurrency failures.

Regenerates the per-bug columns: bug type, multi-variable/loose flags,
LIFS and Causality Analysis stats, and the number of races in the
causality chain.  Each bug runs through the *full* pipeline here: the
synthetic bug finder produces the history + crash report, AITIA models
and slices the history, reproduces with LIFS and diagnoses.

Paper shape targets: all 12 reproduced and diagnosed; 6 multi-variable
(3 of them loosely correlated); interleaving counts 1-2; chains of 1-5
races; no ambiguity.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug
from repro.trace.syzkaller import run_bug_finder


def test_table3_rows(benchmark):
    table = Table(
        "Table 3 — concurrency bugs from the Syzkaller front end "
        "(measured / simulated)",
        ["Bug", "Subsystem", "Bug type", "Multi-var?",
         "LIFS t(s)", "#sched", "Inter.", "CA t(s)", "#sched",
         "races in chain"])
    results = []
    from repro.corpus.registry import syzkaller_bugs
    for bug in syzkaller_bugs():
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced, bug.bug_id
        results.append((bug, diagnosis))
        multi = "Yes*" if bug.loosely_correlated else (
            "Yes" if bug.multi_variable else "No")
        table.add_row(
            bug.bug_id, bug.subsystem, bug.bug_type.value, multi,
            diagnosis.lifs_cost.seconds, diagnosis.lifs_schedules,
            diagnosis.interleaving_count,
            diagnosis.ca_cost.seconds, diagnosis.ca_schedules,
            diagnosis.chain.race_count)
    emit("table3_syzkaller", table.render())

    # Shape assertions.
    assert sum(1 for bug, _ in results if bug.multi_variable) == 6
    assert sum(1 for bug, _ in results if bug.loosely_correlated) == 3
    for bug, d in results:
        assert 1 <= d.interleaving_count <= 2
        assert 1 <= d.chain.race_count <= 6
        assert not d.chain.has_ambiguity

    bug = get_bug("SYZ-04")
    benchmark.pedantic(
        lambda: Aitia(bug, report=run_bug_finder(bug)).diagnose(),
        rounds=1, iterations=1)
