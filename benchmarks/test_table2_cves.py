"""Table 2: the 10 CVE concurrency failures.

Regenerates the paper's per-CVE columns: LIFS time and schedule count,
the interleaving count of the reproducing run, and Causality Analysis
time and schedule count.  Times are simulated seconds from the
calibrated cost model (DESIGN.md explains the substitution); schedule
and interleaving counts are real measured outputs.

Paper shape targets: every CVE reproduced; interleaving counts of 1-2;
LIFS in the tens of seconds to ~2 minutes; CA slower per schedule (VM
reboots) and usually slower overall.
"""

from conftest import emit

from repro.analysis.tables import Table
from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug

#: Paper values for the shape comparison (time s, schedules, interleavings).
PAPER_TABLE2 = {
    "CVE-2019-11486": (44.7, 225, 1, 497.6, 130),
    "CVE-2019-6974": (103.8, 664, 1, 1183.8, 688),
    "CVE-2018-12232": (37.8, 536, 1, 511.4, 680),
    "CVE-2017-15649": (88.0, 1052, 2, 337.9, 257),
    "CVE-2017-10661": (32.8, 99, 1, 336.1, 266),
    "CVE-2017-7533": (64.5, 1056, 1, 1846.7, 1578),
    "CVE-2017-2671": (33.2, 130, 1, 195.3, 159),
    "CVE-2017-2636": (34.3, 197, 1, 270.0, 215),
    "CVE-2016-10200": (32.8, 112, 1, 184.9, 159),
    "CVE-2016-8655": (47.8, 213, 1, 184.0, 135),
}


def test_table2_rows(cve_diagnoses, benchmark):
    table = Table(
        "Table 2 — CVEs caused by a concurrency failure in Linux "
        "(measured / simulated)",
        ["Bug ID", "Subsystem", "LIFS t(s)", "LIFS #sched", "Inter.",
         "CA t(s)", "CA #sched", "ambiguous"])
    for bug, d in cve_diagnoses:
        assert d.reproduced, bug.bug_id
        table.add_row(
            bug.bug_id, bug.subsystem,
            d.lifs_cost.seconds, d.lifs_schedules, d.interleaving_count,
            d.ca_cost.seconds, d.ca_schedules,
            "yes" if d.chain.has_ambiguity else "no")
    emit("table2_cves", table.render())

    # Shape assertions against the paper.
    for bug, d in cve_diagnoses:
        paper = PAPER_TABLE2[bug.bug_id]
        assert d.interleaving_count <= max(paper[2], 2)
        # CA costs more per schedule than LIFS (reboot-dominated).
        assert (d.ca_cost.seconds / max(d.ca_schedules, 1)
                > d.lifs_cost.seconds / max(d.lifs_schedules, 1))
    ambiguous = [bug.bug_id for bug, d in cve_diagnoses
                 if d.chain.has_ambiguity]
    assert ambiguous == ["CVE-2016-10200"]

    # Benchmark one representative end-to-end diagnosis.
    bug = get_bug("CVE-2017-15649")
    benchmark.pedantic(lambda: Aitia(bug).diagnose(), rounds=1,
                       iterations=1)
