"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper table — these quantify the mechanisms the paper asserts
qualitatively:

* how much search the DPOR-style candidate pruning saves LIFS (§3.3);
* what the equivalence-dedup subtree skip saves on top;
* what the 32-VM pool buys (the paper "fully parallelizes" both stages);
* what critical-section collapsing saves Causality Analysis (§3.4).
"""

from conftest import emit

from repro.analysis.metrics import CostModel
from repro.analysis.tables import Table
from repro.core.causality import CaConfig, CausalityAnalysis
from repro.core.lifs import (
    FailureMatcher,
    LeastInterleavingFirstSearch,
    LifsConfig,
)
from repro.corpus.registry import get_bug
from repro.kernel.failures import FailureKind


def _search(bug, **config):
    lifs = LeastInterleavingFirstSearch(
        bug.machine_factory,
        [t.proc for t in bug.threads],
        FailureMatcher(kind=bug.bug_type,
                       location=bug.failure_location),
        config=LifsConfig(**config))
    return lifs.search()


def _private_heavy_factory():
    """A workload shaped like real kernel paths: most instructions touch
    thread-private state (no conflicts), and one flag pair races.  This
    is where the DPOR-style pruning pays off (section 5.2: "many
    instructions do not access global memory objects")."""
    from repro.kernel.builder import ProgramBuilder
    from repro.kernel.machine import KernelMachine, ThreadSpec

    b = ProgramBuilder()
    with b.function("path_a") as f:
        for i in range(12):
            f.inc(f.g(f"a_private{i}"), 1, label=f"APriv{i}")
        f.store(f.g("shared_flag"), 1, label="A1")
    with b.function("path_b") as f:
        for i in range(12):
            f.inc(f.g(f"b_private{i}"), 1, label=f"BPriv{i}")
        # The failure needs A's store to land between B's two samples, so
        # no serial order crashes and LIFS must search.
        f.load("v1", f.g("shared_flag"), label="B0")
        f.load("v2", f.g("shared_flag"), label="B1")
        f.binop("notv1", "eq", f.r("v1"), f.i(0))
        f.binop("flipped", "and", f.r("v2"), f.r("notv1"))
        f.bug_on("flipped", "flag flipped mid-read", label="B2")
    image = b.build()

    def factory():
        return KernelMachine(image, [ThreadSpec("A", "path_a"),
                                     ThreadSpec("B", "path_b")])
    return factory


def test_lifs_pruning_ablation(benchmark):
    factory = _private_heavy_factory()

    def run_one(**config):
        lifs = LeastInterleavingFirstSearch(
            factory, ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION),
            config=LifsConfig(**config))
        return lifs.search()

    def run_all():
        return {
            "full": run_one(),
            "no conflict pruning": run_one(conflict_pruning=False),
            "no equivalence dedup": run_one(equivalence_dedup=False),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Ablation — LIFS search reduction "
        "(12 private accesses per thread + 1 racing flag)",
        ["configuration", "schedules", "pruned candidates",
         "equivalent runs", "reproduced"])
    for name, result in results.items():
        table.add_row(name, result.stats.schedules_executed,
                      result.stats.candidates_pruned,
                      result.stats.equivalent_runs,
                      "yes" if result.reproduced else "NO")
    emit("ablation_lifs", table.render())

    full = results["full"]
    assert all(r.reproduced for r in results.values())
    # Pruning removes every private-access candidate.
    assert full.stats.candidates_pruned >= 12
    assert (results["no conflict pruning"].stats.schedules_executed
            > 2 * full.stats.schedules_executed)


def test_ca_critical_section_ablation(benchmark):
    bug = get_bug("CVE-2017-15649")
    lifs_result = _search(bug)

    def run_both():
        return (
            CausalityAnalysis(bug.machine_factory, lifs_result).analyze(),
            CausalityAnalysis(
                bug.machine_factory, lifs_result,
                config=CaConfig(collapse_critical_sections=False,
                                recheck_edges=False)).analyze(),
            CausalityAnalysis(
                bug.machine_factory, lifs_result,
                config=CaConfig(recheck_edges=False)).analyze(),
        )

    with_sections, without_sections, no_recheck = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    table = Table("Ablation — Causality Analysis configuration",
                  ["configuration", "schedules", "reboots",
                   "chain races"])
    table.add_row("full (sections + edge recheck)",
                  with_sections.stats.schedules_executed,
                  with_sections.stats.reboots,
                  with_sections.chain.race_count)
    table.add_row("no edge recheck",
                  no_recheck.stats.schedules_executed,
                  no_recheck.stats.reboots,
                  no_recheck.chain.race_count)
    table.add_row("no critical-section collapsing",
                  without_sections.stats.schedules_executed,
                  without_sections.stats.reboots,
                  without_sections.chain.race_count)
    emit("ablation_ca", table.render())

    # Same chain regardless; fewer schedules without the recheck pass.
    assert (with_sections.chain.render() == no_recheck.chain.render())
    assert (no_recheck.stats.schedules_executed
            < with_sections.stats.schedules_executed)


def test_vm_pool_parallelism(benchmark):
    """Idealized wall time across the paper's 32-VM pool vs one VM."""
    bug = get_bug("CVE-2017-15649")
    result = benchmark.pedantic(lambda: _search(bug), rounds=1,
                                iterations=1)
    model = CostModel()
    cost = model.stage_cost(result.stats.schedules_executed,
                            result.stats.total_steps,
                            result.stats.failing_runs)
    table = Table("Ablation — reproducing-stage wall time vs VM count",
                  ["VMs", "simulated wall time (s)"])
    for vms in (1, 2, 8, 32):
        table.add_row(vms, cost.parallel_seconds(vms))
    emit("ablation_vms", table.render())
    assert cost.parallel_seconds(32) < cost.parallel_seconds(1)
