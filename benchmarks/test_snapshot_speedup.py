"""Prefix-checkpoint engine speedup: snapshots on vs off over the corpus.

Runs the full diagnosis (LIFS + Causality Analysis) for every corpus bug
twice — once with the prefix-checkpoint engine (boot-checkpoint resume,
per-base checkpoints, continuation splicing) and once with the
``--no-snapshot`` ablation — and compares what the interpreter actually
executed (``interpreted_steps``).  Results land in
``benchmarks/output/bench_snapshot.json`` plus a rendered table.

Unlike the sibling benchmarks this one deliberately avoids the
pytest-benchmark fixture so CI (which installs only pytest + hypothesis)
can run it directly.  Set ``BENCH_SNAPSHOT_BUGS=<n>`` to restrict to the
first *n* corpus bugs (CI uses 3); the >= 2x speedup floor is asserted
only on the full corpus, the never-slower invariant always.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, emit

from repro.analysis.tables import Table
from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.corpus import registry


def _diagnose(bug, snapshots):
    started = time.perf_counter()
    diagnosis = Aitia(bug,
                      lifs_config=LifsConfig(use_snapshots=snapshots),
                      ca_config=CaConfig(use_snapshots=snapshots)
                      ).diagnose()
    elapsed = time.perf_counter() - started
    lifs, ca = diagnosis.lifs_result.stats, diagnosis.ca_result.stats
    return diagnosis, {
        "schedules": lifs.schedules_executed + ca.schedules_executed,
        "steps_executed": lifs.interpreted_steps + ca.interpreted_steps,
        "saved_steps": lifs.saved_steps + ca.saved_steps,
        "splices": lifs.snapshot_splices + ca.snapshot_splices,
        "elapsed_s": elapsed,
    }


def test_snapshot_speedup():
    registry.load()
    bugs = list(registry.all_bugs())
    subset = int(os.environ.get("BENCH_SNAPSHOT_BUGS", "0"))
    if subset:
        bugs = bugs[:subset]

    rows = []
    table = Table(
        "Prefix-checkpoint engine: interpreted steps, snapshots on vs off",
        ["bug", "schedules", "steps on", "steps off", "ratio", "splices"])
    for bug in bugs:
        on_diag, on = _diagnose(bug, True)
        off_diag, off = _diagnose(bug, False)
        # The engine is a pure perf optimisation: identical diagnoses.
        assert on_diag.chain.render() == off_diag.chain.render(), bug.bug_id
        assert on["schedules"] == off["schedules"], bug.bug_id
        ratio = off["steps_executed"] / max(1, on["steps_executed"])
        table.add_row(bug.bug_id, on["schedules"], on["steps_executed"],
                      off["steps_executed"], f"{ratio:.2f}x", on["splices"])
        rows.append({"bug": bug.bug_id, "on": on, "off": off,
                     "ratio": round(ratio, 3)})

    total_on = sum(r["on"]["steps_executed"] for r in rows)
    total_off = sum(r["off"]["steps_executed"] for r in rows)
    elapsed_on = sum(r["on"]["elapsed_s"] for r in rows)
    elapsed_off = sum(r["off"]["elapsed_s"] for r in rows)
    schedules = sum(r["on"]["schedules"] for r in rows)
    ratio = total_off / max(1, total_on)
    table.add_row("TOTAL", schedules, total_on, total_off,
                  f"{ratio:.2f}x",
                  sum(r["on"]["splices"] for r in rows))
    emit("bench_snapshot", table.render())

    payload = {
        "bugs": len(rows),
        "subset": bool(subset),
        "totals": {
            "schedules": schedules,
            "steps_executed_on": total_on,
            "steps_executed_off": total_off,
            "steps_ratio": round(ratio, 3),
            "schedules_per_sec_on": round(schedules / max(1e-9, elapsed_on),
                                          1),
            "schedules_per_sec_off": round(
                schedules / max(1e-9, elapsed_off), 1),
        },
        "per_bug": rows,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "bench_snapshot.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # The engine must never interpret *more* than a fresh-boot run...
    assert total_on <= total_off
    # ...and on the full corpus the acceptance floor is a 2x reduction.
    if not subset:
        assert ratio >= 2.0, f"corpus steps ratio {ratio:.2f}x < 2x"
