"""Figure 9: the KVM irqfd case study (Table 3's bug #4).

Regenerates the paper's case study: a use-after-free whose causality
crosses the thread boundary — the list race A1 => B1 steers deassign
into queueing the shutdown kworker, whose free races with assign's
initialization write:

    A1 => B1  ->  K1 => A2  ->  use-after-free

and contrasts it with the Kairux inflection point, which names a single
instruction and misses the race-steered invocation.
"""

from conftest import emit

from repro.baselines import Kairux
from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug
from repro.trace.syzkaller import run_bug_finder


def test_fig9_case_study(benchmark):
    bug = get_bug("SYZ-04")

    def full_pipeline():
        report = run_bug_finder(bug)
        return Aitia(bug, report=report).diagnose()

    diagnosis = benchmark.pedantic(full_pipeline, rounds=1, iterations=1)
    assert diagnosis.reproduced

    kairux = Kairux().diagnose(bug, diagnosis)
    failure_run = diagnosis.lifs_result.failure_run
    lines = [
        "Figure 9 — use-after-free in irq_bypass_register_consumer",
        "",
        "buggy execution: "
        + " => ".join(f"{t.thread.split('/')[0]}:{t.instr_label}"
                      for t in failure_run.trace
                      if "stat" not in t.instr_label
                      and not t.instr_label.endswith("b")),
        f"failure:        {failure_run.failure}",
        f"AITIA chain:    {diagnosis.chain.render()}",
        f"Kairux output:  {kairux.summary}",
        "",
        "The chain spans three contexts (two syscalls and the kworker); "
        "the inflection point alone cannot explain why the kworker ran.",
    ]
    emit("fig9_case_study", "\n".join(lines))

    assert diagnosis.chain.contains_race_between("A1", "B1")
    assert diagnosis.chain.contains_race_between("K1", "A2")
    threads = {t.thread for t in failure_run.trace}
    assert any(t.startswith("kworker/") for t in threads)
    assert not kairux.comprehensive
