"""Search-policy ablation: adaptive ordering + invariant pruning vs static.

Diagnoses every corpus bug three times — with the static policy, with
the full adaptive stack starting from an empty experience index that
accumulates in corpus order ("cold"), and with the adaptive stack primed
with the corpus-trained index ("warm") — and compares executed schedules
(LIFS + Causality Analysis).  Policies must never change the answer:
every run's diagnosis facts are asserted bit-identical to the static
baseline's.  Results land in ``benchmarks/output/bench_policy.json``
plus a rendered table.

Avoids the pytest-benchmark fixture so CI (pytest + hypothesis only)
can run it directly.  Set ``BENCH_POLICY_BUGS=<n>`` to restrict to the
first *n* corpus bugs (CI uses 3); the >= 15% corpus-wide schedule
reduction floor is asserted only on the full corpus, bit-identity and
the pruning-fires check always.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, emit

from repro import api
from repro.analysis.tables import Table
from repro.corpus import registry
from repro.observe.tracer import Tracer
from repro.policy import ExperienceIndex


def _facts(diagnosis):
    """What the diagnosis *says* — policies may only change its cost.

    The bit-identity surface is chain, root-cause set and failure
    signature; benign races compare undirected, since their observed
    direction follows whichever minimal witness schedule LIFS
    reproduced first.
    """
    if not diagnosis.reproduced:
        return ("not-reproduced",)
    ca = diagnosis.ca_result
    benign = tuple(sorted(
        tuple(sorted(tuple(sorted((r.first.instr_label,
                                   r.second.instr_label)))
                     for r in u.races))
        for u in ca.benign_units))
    return (diagnosis.chain.render(),
            tuple(sorted(str(u) for u in ca.root_cause_units)),
            benign,
            str(diagnosis.lifs_result.failure_run.failure))


def _diagnose(bug, policy, experience=None):
    tracer = Tracer()  # sink-less: aggregates the policy.* counters
    started = time.perf_counter()
    diagnosis = api.diagnose(bug, policy=policy, experience=experience,
                             tracer=tracer)
    elapsed = time.perf_counter() - started
    return diagnosis, {
        "schedules": (diagnosis.total_lifs_schedules
                      + diagnosis.ca_schedules),
        "pruned": tracer.counters.get("policy.pruned", 0),
        "experience_hits": tracer.counters.get("policy.experience_hits", 0),
        "elapsed_s": elapsed,
    }


def test_policy_ablation():
    registry.load()
    bugs = list(registry.all_bugs())
    subset = int(os.environ.get("BENCH_POLICY_BUGS", "0"))
    if subset:
        bugs = bugs[:subset]

    # Pass 1+2 interleaved: static baseline, then cold adaptive with the
    # experience index accumulating in corpus order (api.diagnose
    # absorbs each reproduced diagnosis into the index it was given).
    cold_index = ExperienceIndex()
    rows = []
    for bug in bugs:
        static_diag, static = _diagnose(bug, "static")
        cold_diag, cold = _diagnose(bug, "adaptive", experience=cold_index)
        assert _facts(cold_diag) == _facts(static_diag), bug.bug_id
        rows.append({"bug": bug.bug_id, "facts": _facts(static_diag),
                     "static": static, "cold": cold})

    # Pass 3: warm — every bug sees the full corpus-trained index (a
    # frozen copy per run, so warm results are order-independent).
    trained = cold_index.snapshot()
    for bug, row in zip(bugs, rows):
        warm_diag, warm = _diagnose(
            bug, "adaptive",
            experience=ExperienceIndex.from_snapshot(trained))
        assert _facts(warm_diag) == row.pop("facts"), bug.bug_id
        row["warm"] = warm

    table = Table(
        "Search-policy ablation — executed schedules (LIFS + CA)",
        ["bug", "static", "adaptive cold", "adaptive warm",
         "warm pruned", "warm hits"])
    for row in rows:
        table.add_row(row["bug"], row["static"]["schedules"],
                      row["cold"]["schedules"], row["warm"]["schedules"],
                      row["warm"]["pruned"], row["warm"]["experience_hits"])
    total_static = sum(r["static"]["schedules"] for r in rows)
    total_cold = sum(r["cold"]["schedules"] for r in rows)
    total_warm = sum(r["warm"]["schedules"] for r in rows)
    warm_ratio = total_warm / max(1, total_static)
    table.add_row("TOTAL", total_static, total_cold, total_warm,
                  sum(r["warm"]["pruned"] for r in rows),
                  sum(r["warm"]["experience_hits"] for r in rows))
    emit("bench_policy", table.render()
         + f"\n\nwarm/static schedule ratio: {warm_ratio:.3f} "
         f"({(1 - warm_ratio) * 100:.1f}% reduction)")

    payload = {
        "bugs": len(rows),
        "subset": bool(subset),
        "totals": {
            "schedules_static": total_static,
            "schedules_adaptive_cold": total_cold,
            "schedules_adaptive_warm": total_warm,
            "warm_ratio": round(warm_ratio, 3),
            "reduction_pct": round((1 - warm_ratio) * 100, 1),
            "pruned_warm": sum(r["warm"]["pruned"] for r in rows),
            "experience_features": len(ExperienceIndex.from_snapshot(
                trained)),
        },
        "per_bug": rows,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "bench_policy.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Invariant pruning must actually fire somewhere, even on the CI
    # subset — otherwise the ablation is vacuous.
    assert sum(r["warm"]["pruned"] for r in rows) > 0
    # Adaptive never costs more than static...
    assert total_cold <= total_static
    assert total_warm <= total_static
    # ...and on the full corpus the acceptance floor is a 15% reduction.
    if not subset:
        assert warm_ratio <= 0.85, (
            f"warm adaptive executed {total_warm} of {total_static} "
            f"static schedules ({warm_ratio:.3f} > 0.85)")
