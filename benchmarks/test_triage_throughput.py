"""Triage-service throughput: sequential evaluate vs parallel triage.

Not a paper table — it measures what the triage subsystem adds on top
of the paper's algorithms: wall-clock for the legacy sequential
``repro evaluate`` loop, the same 22 diagnoses through
``repro triage --corpus --jobs N`` (real ``multiprocessing`` workers),
and a second triage run against the warm result store (pure cache
hits, zero LIFS/CA executions).

Process parallelism only helps with real cores: the recorded speedup
is honest for the machine the benchmark ran on (core count included in
the output), and the cached run's speedup holds everywhere.
"""

import os
import time

from conftest import emit

from repro.analysis.evaluation import evaluate_corpus
from repro.analysis.tables import Table
from repro.corpus import registry
from repro.service.queue import JobOutcome
from repro.service.store import ResultStore
from repro import api

JOBS = 4


def test_triage_throughput(tmp_path):
    registry.load()
    bugs = registry.all_bugs()
    store_path = str(tmp_path / "triage_store.jsonl")

    t0 = time.monotonic()
    evaluation = evaluate_corpus(bugs)
    sequential_s = time.monotonic() - t0
    assert evaluation.reproduced_count == len(bugs)

    t0 = time.monotonic()
    cold = api.triage(bugs, jobs=JOBS, store=ResultStore(store_path))
    cold_s = time.monotonic() - t0
    assert cold.count(JobOutcome.SUCCEEDED) == len(bugs)

    t0 = time.monotonic()
    warm = api.triage(bugs, jobs=JOBS, store=ResultStore(store_path))
    warm_s = time.monotonic() - t0
    assert warm.count(JobOutcome.CACHE_HIT) == len(bugs)
    assert warm.count(JobOutcome.SUCCEEDED) == 0

    chains_seq = {r.bug_id: r.chain for r in evaluation.rows}
    chains_tri = {r.bug_id: r.chain for r in cold.results}
    assert chains_seq == chains_tri  # identical diagnoses, any core count

    table = Table(
        f"triage throughput — 22 corpus bugs, "
        f"{os.cpu_count() or '?'} core(s)",
        ["run", "wall s", "vs sequential", "diagnoses", "cache hits"])
    table.add_row("repro evaluate (sequential)", f"{sequential_s:.2f}",
                  "1.00x", len(bugs), 0)
    table.add_row(f"repro triage --corpus --jobs {JOBS} (cold store)",
                  f"{cold_s:.2f}", f"{sequential_s / cold_s:.2f}x",
                  len(bugs), 0)
    table.add_row(f"repro triage --corpus --jobs {JOBS} (warm store)",
                  f"{warm_s:.2f}", f"{sequential_s / warm_s:.2f}x",
                  0, len(bugs))
    text = (table.render()
            + "\n\nnote: cold-run speedup scales with physical cores "
            "(process-parallel, GIL-free); on a single-core host the "
            "fork/IPC overhead makes the cold run slightly slower than "
            "sequential.  The warm run answers every report from the "
            "content-addressed store without executing LIFS or CA.")
    emit("triage_throughput", text)

    # The cached path must beat sequential outright, everywhere.
    assert warm_s < sequential_s
