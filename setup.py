"""Legacy setup shim: the execution environment has no ``wheel`` package,
so editable installs must go through ``python setup.py develop``.  The
entry point is duplicated here because the environment's setuptools
predates PEP 621 script support."""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["repro-aitia = repro.cli:main"],
    },
)
