"""CI smoke test for ``repro serve`` — the end-to-end daemon story.

Starts the daemon as a subprocess on an ephemeral port, submits three
corpus ``.crash`` artifacts (two unique, one duplicate of the first
*after* it completed), polls each to completion, asserts exactly one
cache hit through ``GET /metrics``, and shuts the daemon down cleanly
with SIGTERM.  Exits non-zero on any failed expectation, so a CI step
is just::

    PYTHONPATH=src python scripts/daemon_smoke.py

Uses the real diagnosis pipeline (no stub): the two SYZ bugs diagnose
in well under a second each.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, SRC)

from repro.corpus.registry import get_bug  # noqa: E402
from repro.observe.export import parse_exposition  # noqa: E402
from repro.service.artifacts import CrashArtifact  # noqa: E402
from repro.trace.syzkaller import run_bug_finder  # noqa: E402

BUGS = ("SYZ-01", "SYZ-04")


def request(port, method, path, body=b""):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def wait_for_job(port, job_id, timeout_s=120):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body = request(port, "GET", f"/job/{job_id}")
        assert status == 200, (status, body)
        payload = json.loads(body)
        if payload["status"] not in ("pending", "running"):
            return payload
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never completed")


def main() -> int:
    artifacts = [
        CrashArtifact.from_report(run_bug_finder(get_bug(b))).render()
        for b in BUGS]

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory() as workdir:
        port_file = os.path.join(workdir, "port")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--data-dir", os.path.join(workdir, "data"),
             "--port-file", port_file], env=env)
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(port_file):
                assert daemon.poll() is None, "daemon died during boot"
                assert time.monotonic() < deadline, "no port file"
                time.sleep(0.05)
            port = int(open(port_file).read().strip().rsplit(":", 1)[1])
            print(f"smoke: daemon up on port {port}")

            # Submit the two unique artifacts and wait them out.
            for text, bug in zip(artifacts, BUGS):
                status, body = request(port, "POST", "/submit",
                                       text.encode())
                payload = json.loads(body)
                assert status == 202, (status, payload)
                assert payload["status"] == "accepted", payload
                job = wait_for_job(port, payload["job_id"])
                assert job["status"] == "succeeded", job
                print(f"smoke: {bug} diagnosed "
                      f"({job['seconds']:.2f}s, digest {job['digest']})")

            # The third submission duplicates the first: a cache hit,
            # answered without re-diagnosis.
            status, body = request(port, "POST", "/submit",
                                   artifacts[0].encode())
            payload = json.loads(body)
            assert status == 200 and payload["status"] == "cache_hit", (
                status, payload)
            print(f"smoke: duplicate answered from {payload['tier']} tier")

            status, body = request(port, "GET", "/metrics")
            assert status == 200
            metrics = parse_exposition(body.decode())
            assert metrics["aitia_daemon_submissions_total"] == 3, metrics
            assert metrics["aitia_daemon_accepted_total"] == 2, metrics
            assert metrics["aitia_daemon_completed_total"] == 2, metrics
            assert metrics["aitia_daemon_cache_hits_total"] == 1, metrics
            assert metrics["aitia_daemon_in_flight"] == 0, metrics
            print("smoke: metrics reconcile "
                  "(3 submissions = 2 accepted + 1 cache hit)")
        except BaseException:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
            raise

        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        assert code == 0, f"daemon exited {code} on SIGTERM"
        print("smoke: clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
